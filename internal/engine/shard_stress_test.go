package engine

import (
	"sync"
	"testing"

	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

// The shard stress test hammers the sharded merge path from one goroutine
// per worker — the socket server's concurrency shape — and then proves the
// outcome is *exactly* the single-lock serial result, not just "consistent".
//
// Exactness is arranged, not assumed: every pushed gradient is an integer
// and the attached team size is 8, so each merge adds dyadic rationals
// (value × 1/8) that float32 represents exactly. Addition of exactly
// representable values well inside the 2^24 integer range commutes and
// associates with no rounding, so any interleaving of merges must land on
// the bit-identical accumulator state. A divergence therefore can only come
// from a concurrency bug — a torn write, a lost merge, a double-count.

const (
	stressWorkers = 8 // keeps 1/active = 0.125 exactly representable
	stressIters   = 50
	stressShards  = 5
)

func stressState(t *testing.T, shards int) *State {
	t.Helper()
	proto := nn.NewClassifierMLP(4, []int{6}, 3, tensor.NewRNG(1))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	pol, err := New("ssp", Params{Workers: stressWorkers, Threshold: 1 << 30, NumUnits: part.NumUnits()})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	return NewStateSharded(pol, part, stressWorkers, 1.0, shards)
}

// stressPush replays worker w's full deterministic push schedule against s:
// every iteration pushes all units (batched on even iterations, row-by-row
// on odd ones, each worker starting at its own unit offset) plus one
// deliberate duplicate re-push that the version guard must drop.
func stressPush(s *State, w, units int) {
	var (
		batchUnits []int
		batchVals  [][]float32
	)
	for n := int64(1); n <= stressIters; n++ {
		batchUnits, batchVals = batchUnits[:0], batchVals[:0]
		for i := 0; i < units; i++ {
			u := (i + w) % units
			vals := make([]float32, len(s.Acc[w].Unit(u)))
			for j := range vals {
				vals[j] = float32((w + 1) * (int(n)%3 + 1))
			}
			if n%2 == 0 {
				batchUnits = append(batchUnits, u)
				batchVals = append(batchVals, vals)
			} else {
				s.Merge(w, u, vals, n)
			}
		}
		if n%2 == 0 {
			// MergeBatch wants ascending units; rotate back into order.
			for k := range batchUnits {
				for j := k; j > 0 && batchUnits[j] < batchUnits[j-1]; j-- {
					batchUnits[j], batchUnits[j-1] = batchUnits[j-1], batchUnits[j]
					batchVals[j], batchVals[j-1] = batchVals[j-1], batchVals[j]
				}
			}
			s.MergeBatch(w, batchUnits, batchVals, n)
		}
		// Re-push an already-stamped row: the duplicate guard must drop the
		// mass whole, concurrently or not.
		dup := make([]float32, len(s.Acc[w].Unit(w%units)))
		for j := range dup {
			dup[j] = 1e6 // would be unmissable if double-counted
		}
		s.Merge(w, w%units, dup, n)
	}
}

// TestShardedMergeStressMatchesSerial runs the schedule concurrently (one
// goroutine per worker, shards=5) and serially (shards=1, worker-major
// order) and requires bit-identical accumulators, identical version
// matrices and the exact deterministic duplicate count. Run under -race
// this is the tentpole's concurrent-pushes-across-shards hammer.
func TestShardedMergeStressMatchesSerial(t *testing.T) {
	conc := stressState(t, stressShards)
	if conc.NumShards() != stressShards {
		t.Fatalf("NumShards=%d want %d", conc.NumShards(), stressShards)
	}
	units := conc.ShardMap().NumUnits()

	var wg sync.WaitGroup
	for w := 0; w < stressWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stressPush(conc, w, units)
		}(w)
	}
	wg.Wait()

	serial := stressState(t, 1)
	for w := 0; w < stressWorkers; w++ {
		stressPush(serial, w, units)
	}

	for w := 0; w < stressWorkers; w++ {
		for u := 0; u < units; u++ {
			if conc.Versions.Get(w, u) != serial.Versions.Get(w, u) {
				t.Fatalf("version (%d,%d): concurrent %d, serial %d",
					w, u, conc.Versions.Get(w, u), serial.Versions.Get(w, u))
			}
			cu, su := conc.Acc[w].Unit(u), serial.Acc[w].Unit(u)
			for i := range cu {
				if cu[i] != su[i] {
					t.Fatalf("acc[%d] unit %d elem %d: concurrent %v, serial %v",
						w, u, i, cu[i], su[i])
				}
			}
		}
	}
	if conc.Versions.Min() != stressIters {
		t.Fatalf("Min=%d want %d", conc.Versions.Min(), stressIters)
	}
	wantDups := serial.ChurnSnapshot().DuplicatesDropped
	if wantDups != stressWorkers*stressIters {
		t.Fatalf("serial dropped %d duplicates, schedule promises %d", wantDups, stressWorkers*stressIters)
	}
	if got := conc.ChurnSnapshot().DuplicatesDropped; got != wantDups {
		t.Fatalf("concurrent dropped %d duplicates, serial %d", got, wantDups)
	}
}

// TestShardedMergeCombinedStressMatchesSerial drives the edge-aggregation
// entry point concurrently: each goroutine owns one unit's stream of
// coalesced rows (summed mass + originator stamps) targeting shards in
// parallel, and the result must equal the serial single-shard replay.
func TestShardedMergeCombinedStressMatchesSerial(t *testing.T) {
	conc := stressState(t, stressShards)
	units := conc.ShardMap().NumUnits()

	push := func(s *State, u int) {
		for n := int64(1); n <= stressIters; n++ {
			vals := make([]float32, len(s.Acc[0].Unit(u)))
			var stamps []Stamp
			for w := 0; w < stressWorkers; w++ {
				for j := range vals {
					vals[j] += float32((w + 1) * (int(n)%3 + 1))
				}
				stamps = append(stamps, Stamp{Worker: w, Iter: n})
			}
			// One stale stamp per round: already merged, must be dropped
			// without dropping the live mass.
			stamps = append(stamps, Stamp{Worker: 0, Iter: n - 1})
			s.MergeCombined(u, vals, stamps)
		}
	}

	var wg sync.WaitGroup
	for u := 0; u < units; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			push(conc, u)
		}(u)
	}
	wg.Wait()

	serial := stressState(t, 1)
	for u := 0; u < units; u++ {
		push(serial, u)
	}

	for w := 0; w < stressWorkers; w++ {
		for u := 0; u < units; u++ {
			if conc.Versions.Get(w, u) != serial.Versions.Get(w, u) {
				t.Fatalf("version (%d,%d): concurrent %d, serial %d",
					w, u, conc.Versions.Get(w, u), serial.Versions.Get(w, u))
			}
			cu, su := conc.Acc[w].Unit(u), serial.Acc[w].Unit(u)
			for i := range cu {
				if cu[i] != su[i] {
					t.Fatalf("acc[%d] unit %d elem %d: concurrent %v, serial %v",
						w, u, i, cu[i], su[i])
				}
			}
		}
	}
	if got, want := conc.ChurnSnapshot().DuplicatesDropped, serial.ChurnSnapshot().DuplicatesDropped; got != want {
		t.Fatalf("concurrent dropped %d duplicate stamps, serial %d", got, want)
	}
}
