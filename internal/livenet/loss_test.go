package livenet

import (
	"net"
	"sync"
	"testing"
	"time"

	"rog/internal/lossnet"
	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/tensor"
	"rog/internal/transport"
)

// TestLossyRowFramesBoundedStaleness runs the live protocol with every
// worker's uplink behind a lossnet frame-dropping conn that discards row
// frames only (the kind byte sits right after the 12-byte transport header,
// so control frames — push-done, pull, pull-done — pass untouched and act
// as the reliable side channel). This is the stream-transport half of the
// loss story: a silently dropped row simply never merges, so its gradient
// mass is gone from the server's view until the worker's next push re-sends
// that unit with fresh mass. The run must still complete every iteration
// and the RSP staleness bound must hold throughout — the gate parks workers
// on the true (server-side) minimum, which only merges advance.
//
// What the stream path *cannot* see is the gap itself: the worker stamps
// pushIter optimistically at send, so a dropped row is indistinguishable
// from a delivered one on the sender. That blindness is exactly what the
// lossnet datagram transport's sequence numbers + NACK lists close.
func TestLossyRowFramesBoundedStaleness(t *testing.T) {
	const workers, threshold, iters = 3, 4, 25
	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(41))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	srv, err := NewServer(part, ServerConfig{Workers: workers, Threshold: threshold})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	dropRowFrames := func(b []byte) bool { return len(b) > 12 && b[12] == kindRow }

	var models []*nn.Sequential
	var ws []*Worker
	var lossy []*lossnet.Conn
	var handlerWG sync.WaitGroup
	var conns []net.Conn
	for i := 0; i < workers; i++ {
		m := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		models = append(models, m)
		c, s := net.Pipe()
		conns = append(conns, c, s)
		handlerWG.Add(1)
		go func(id int, conn net.Conn) {
			defer handlerWG.Done()
			if err := srv.HandleConn(id, conn); err != nil {
				t.Errorf("server handler %d: %v", id, err)
			}
		}(i, s)
		lc := lossnet.WrapConn(c, lossnet.NewGilbertElliott(0.05, 4, uint64(i)*977+13), dropRowFrames)
		lossy = append(lossy, lc)
		ws = append(ws, NewWorker(m, part, lc, WorkerConfig{
			ID: i, Threshold: threshold, LR: 0.1, Momentum: 0.9,
		}))
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
		srv.Close()
		handlerWG.Wait()
	}()

	data := newClusterData(23)
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(id int, w *Worker) {
			defer wg.Done()
			r := tensor.NewRNG(uint64(id)*31 + 7)
			for k := 0; k < iters; k++ {
				err := w.RunIteration(func() {
					x, y := data.batch(r, 16)
					_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
					models[id].Backward(g)
				})
				if err != nil {
					t.Errorf("worker %d iter %d: %v", id, k, err)
					return
				}
			}
		}(i, w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock: lossy cluster did not finish")
	}

	for i, w := range ws {
		if got := w.Iterations(); got != iters {
			t.Errorf("worker %d completed %d/%d iterations under loss", i, got, iters)
		}
	}
	if got := srv.MaxStalenessObserved(); got > threshold {
		t.Errorf("staleness %d exceeded threshold %d under frame loss", got, threshold)
	}
	var drops, bytes int64
	for _, lc := range lossy {
		d, b := lc.Dropped()
		drops += d
		bytes += b
	}
	if drops == 0 {
		t.Fatal("the 5% channel dropped nothing — the loss injector never fired")
	}
	if bytes == 0 {
		t.Fatal("dropped frames carried no bytes")
	}
	t.Logf("dropped %d row frames (%d bytes) across %d workers", drops, bytes, workers)
}

// TestLossyConnPassesControlFrames pins the droppable predicate the chaos
// test relies on: with a rate-1.0 channel, every row frame vanishes but the
// push-done control frame still crosses — dropping it would stall the
// protocol rather than degrade it.
func TestLossyConnPassesControlFrames(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	lc := lossnet.WrapConn(a, lossnet.NewBernoulli(1.0, 1), func(b []byte) bool {
		return len(b) > 12 && b[12] == kindRow
	})

	got := make(chan byte, 1)
	errs := make(chan error, 1)
	go func() {
		buf := make([]byte, 256)
		n, err := b.Read(buf)
		if err != nil {
			errs <- err
			return
		}
		// Frame layout: 8-byte start marker, 4-byte length, payload.
		got <- buf[:n][12]
	}()

	if err := transport.WriteFrame(lc, rowMsg(3, compressPayload(t))); err != nil {
		t.Fatalf("row write: %v", err)
	}
	if err := transport.WriteFrame(lc, pushDoneMsg(3, 0.001)); err != nil {
		t.Fatalf("control write: %v", err)
	}

	select {
	case k := <-got:
		if k != kindPushDone {
			t.Fatalf("first frame through the channel was %q, want push-done", k)
		}
	case err := <-errs:
		t.Fatalf("read: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("control frame never arrived — the predicate dropped it")
	}
	if d, _ := lc.Dropped(); d != 1 {
		t.Fatalf("dropped %d frames, want exactly the row frame", d)
	}
}
