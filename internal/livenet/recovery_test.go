package livenet

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rog/internal/durable"
	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

// TestServerCrashRecoveryWorkersRideThrough is the livenet chaos test: a
// 3-worker team trains resiliently while the parameter server is killed
// mid-run and a fresh server process recovers over the same checkpoint
// store. The workers — riding the ordinary reconnect backoff — must resync
// against the new incarnation (observing its bumped recovery epoch), finish
// every iteration, and never breach the staleness bound.
func TestServerCrashRecoveryWorkersRideThrough(t *testing.T) {
	const workers, threshold, iters = 3, 4, 25
	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(41))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	fs := durable.NewMemFS()
	openStore := func() *durable.Store {
		t.Helper()
		st, err := durable.Open(fs, "ckpt")
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	st1 := openStore()
	srv1, err := NewServer(part, ServerConfig{Workers: workers, Threshold: threshold, Durable: st1})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if srv1.Epoch() != 0 {
		t.Fatalf("fresh server at epoch %d", srv1.Epoch())
	}

	// dial always connects to the current server incarnation; the swap
	// happens under mu while the old incarnation is torn down.
	var mu sync.Mutex
	cur := srv1
	var handlerWG sync.WaitGroup
	dial := func(id int) func() (net.Conn, error) {
		return func() (net.Conn, error) {
			mu.Lock()
			srv := cur
			mu.Unlock()
			c, s := net.Pipe()
			handlerWG.Add(1)
			go func() {
				defer handlerWG.Done()
				// Handler errors are expected here: the crash kills
				// connections mid-frame by design.
				_ = srv.HandleConn(id, s)
			}()
			return c, nil
		}
	}

	data := newClusterData(43)
	var models []*nn.Sequential
	var ws []*Worker
	var initialConns []net.Conn
	for i := 0; i < workers; i++ {
		m := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		models = append(models, m)
		conn, derr := dial(i)()
		if derr != nil {
			t.Fatal(derr)
		}
		initialConns = append(initialConns, conn)
		ws = append(ws, NewWorker(m, part, conn, WorkerConfig{
			ID: i, Workers: workers, Threshold: threshold, LR: 0.1, Momentum: 0.9,
		}))
	}

	// done[i] counts worker i's completed compute passes (updated inside the
	// compute callback, so the main goroutine can poll progress race-free).
	var progress [workers]atomic.Int64
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(id int, w *Worker) {
			defer wg.Done()
			r := tensor.NewRNG(uint64(id)*17 + 5)
			b := NewBackoff(time.Millisecond, 20*time.Millisecond, uint64(id)+1)
			err := w.RunResilient(iters, func() {
				// Pace the run so the crash lands mid-training, not after it.
				time.Sleep(500 * time.Microsecond)
				x, y := data.batch(r, 16)
				_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
				models[id].Backward(g)
				progress[id].Add(1)
			}, dial(id), b, 100)
			if err != nil {
				t.Errorf("worker %d: %v", id, err)
			}
		}(i, w)
	}

	// Let the team make real progress, cut a mid-run checkpoint, then kill
	// the server: crash the store (unsynced WAL bytes die with the process),
	// sever every connection, and stand a new incarnation up over the same
	// filesystem.
	deadline := time.Now().Add(20 * time.Second)
	progressed := func() bool {
		for i := range progress {
			if progress[i].Load() < 3 {
				return false
			}
		}
		return true
	}
	for !progressed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !progressed() {
		t.Fatal("team made no progress before the crash")
	}
	if err := srv1.Checkpoint(); err != nil {
		t.Fatalf("mid-run checkpoint: %v", err)
	}

	st1.Crash()
	st2 := openStore()
	if !st2.HasState() {
		t.Fatal("crashed store lost its durable state")
	}
	srv2, err := NewServer(part, ServerConfig{Workers: workers, Threshold: threshold, Durable: st2})
	if err != nil {
		t.Fatalf("recovering NewServer: %v", err)
	}
	mu.Lock()
	cur = srv2
	srv1.Close()
	mu.Unlock()
	// The dead process takes its sockets with it: sever every pipe of the
	// first incarnation so the workers' next frame fails and the reconnect
	// backoff kicks in.
	for _, c := range initialConns {
		c.Close()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock: workers did not finish across the server crash")
	}

	if got := srv2.Epoch(); got != 1 {
		t.Errorf("recovered server epoch %d, want 1", got)
	}
	for i, w := range ws {
		if got := w.Iterations(); got < iters {
			t.Errorf("worker %d completed %d/%d iterations", i, got, iters)
		}
		if got := w.Epoch(); got != 1 {
			t.Errorf("worker %d saw epoch %d in its resync, want 1", i, got)
		}
	}
	if got := srv2.MaxStalenessObserved(); got > threshold {
		t.Errorf("staleness %d exceeded threshold %d across the server crash", got, threshold)
	}
	if churn := srv2.Churn(); churn.Reconnects < workers {
		t.Errorf("recovered server saw %d reconnects, want >= %d", churn.Reconnects, workers)
	}

	for _, w := range ws {
		w.conn.Close()
	}
	srv2.Close()
	handlerWG.Wait()
}

// TestNewServerRecoversState pins the recovery path without concurrency:
// merge a few rows, checkpoint, crash, and reopen — the new incarnation
// must carry the journaled versions at a bumped epoch with every worker
// detached (awaiting its resync).
func TestNewServerRecoversState(t *testing.T) {
	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(47))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	fs := durable.NewMemFS()
	st1, err := durable.Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := NewServer(part, ServerConfig{Workers: 2, Threshold: 4, Durable: st1})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, part.Unit(0).Len)
	for i := range vals {
		vals[i] = float32(i%3) - 1
	}
	srv1.mu.Lock()
	srv1.state.Merge(0, 0, vals, 1)
	srv1.state.Merge(1, 0, vals, 1)
	srv1.state.Merge(0, 0, vals, 2)
	srv1.mu.Unlock()
	st1.Crash() // no checkpoint since Begin: recovery must replay the WAL

	st2, err := durable.Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(part, ServerConfig{Workers: 2, Threshold: 4, Durable: st2})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Epoch() != 1 {
		t.Fatalf("epoch %d after recovery, want 1", srv2.Epoch())
	}
	if got := srv2.state.Versions.Get(0, 0); got != 2 {
		t.Fatalf("recovered version[0][0] = %d, want 2", got)
	}
	if got := srv2.state.Versions.Get(1, 0); got != 1 {
		t.Fatalf("recovered version[1][0] = %d, want 1", got)
	}
	if srv2.ActiveWorkers() != 0 {
		t.Fatalf("%d workers active before any reconnect", srv2.ActiveWorkers())
	}
	// A second epoch: crash again without new state, recover again.
	st2.Crash()
	st3, err := durable.Open(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	srv3, err := NewServer(part, ServerConfig{Workers: 2, Threshold: 4, Durable: st3})
	if err != nil {
		t.Fatal(err)
	}
	if srv3.Epoch() != 2 {
		t.Fatalf("epoch %d after second recovery, want 2", srv3.Epoch())
	}
}
