package livenet

import (
	"net"
	"sync"
	"testing"
	"time"

	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/serve"
	"rog/internal/tensor"
)

// serveWallClock adapts the monotonic wall clock to the serve tier's
// injected Clock, anchored at construction so timestamps stay small.
type serveWallClock struct{ start time.Time }

func newServeWallClock() serveWallClock { return serveWallClock{start: time.Now()} }

func (c serveWallClock) Now() float64 { return time.Since(c.start).Seconds() }

func (c serveWallClock) After(d float64, fn func()) {
	time.AfterFunc(time.Duration(d*float64(time.Second)), fn)
}

// TestServingTierRidesLiveTraining attaches the inference tier to a real
// socket training run: the Publisher hooks the live server's merge stream
// through State().RowSink, an inference Server answers over TCP while the
// workers train over pipes, and the replies must advance monotonically
// through the published versions without perturbing training.
func TestServingTierRidesLiveTraining(t *testing.T) {
	const workers, threshold, iters = 3, 4, 40
	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(5))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	srv, err := NewServer(part, ServerConfig{Workers: workers, Threshold: threshold})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	// Hook the serving tier in before the first connection, like OnMerge.
	pub := serve.NewPublisher(srv.State(), part, proto.Params(), 0.05)
	scratch := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(1))
	scratch.CopyParamsFrom(proto)
	inf := serve.NewServer(pub, scratch, 6, serve.Config{
		MaxBatch: 1,
		Clock:    newServeWallClock(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = inf.Serve(ln) }()

	// The training side: one handler goroutine + one worker per robot.
	var handlers sync.WaitGroup
	var conns []net.Conn
	var ws []*Worker
	var models []*nn.Sequential
	for i := 0; i < workers; i++ {
		m := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		models = append(models, m)
		c, s := net.Pipe()
		conns = append(conns, c, s)
		handlers.Add(1)
		go func(id int, conn net.Conn) {
			defer handlers.Done()
			if err := srv.HandleConn(id, conn); err != nil {
				t.Errorf("server handler %d: %v", id, err)
			}
		}(i, s)
		ws = append(ws, NewWorker(m, part, c, WorkerConfig{
			ID: i, Threshold: threshold, LR: 0.1, Momentum: 0.9,
		}))
	}

	data := newClusterData(9)
	var trainers sync.WaitGroup
	for i, w := range ws {
		trainers.Add(1)
		go func(id int, w *Worker) {
			defer trainers.Done()
			r := tensor.NewRNG(uint64(id)*31 + 7)
			for k := 0; k < iters; k++ {
				if err := w.RunIteration(func() {
					x, y := data.batch(r, 16)
					_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
					models[id].Backward(g)
				}); err != nil {
					t.Errorf("worker %d iter %d: %v", id, k, err)
					return
				}
			}
		}(i, w)
	}

	// The serving client hammers the tier while training runs. A sequential
	// client's replies must ride monotonically non-decreasing snapshot
	// versions: the hot swap only ever installs a newer snapshot.
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	client := serve.NewClient(cc)
	input := []float32{0.5, -1, 0.25, 0, 1, -0.5}
	var lastVersion int64 = -1
	served := 0
	trainDone := make(chan struct{})
	go func() { trainers.Wait(); close(trainDone) }()
loop:
	for {
		select {
		case <-trainDone:
			break loop
		default:
		}
		rep, err := client.Do(input, 0)
		if err != nil {
			t.Errorf("client: %v", err)
			break
		}
		if len(rep.Output) != 4 {
			t.Errorf("reply width %d, want 4", len(rep.Output))
			break
		}
		if rep.Version < lastVersion {
			t.Errorf("snapshot version went backwards: %d after %d", rep.Version, lastVersion)
			break
		}
		lastVersion = rep.Version
		served++
	}
	trainers.Wait()

	// Training has quiesced: demand the latest published version explicitly
	// and check the read gate answers from it (or newer).
	want := pub.Version()
	rep, err := client.Do(input, want)
	if err != nil {
		t.Fatalf("fresh read: %v", err)
	}
	if rep.Version < want {
		t.Fatalf("read gate answered version %d below demanded %d", rep.Version, want)
	}

	if err := client.Close(); err != nil {
		t.Errorf("client close: %v", err)
	}
	ln.Close()
	inf.Close()
	for _, c := range conns {
		c.Close()
	}
	srv.Close()
	handlers.Wait()

	if served == 0 {
		t.Fatal("no requests served during training")
	}
	if pub.Publishes() < 2 {
		t.Fatalf("publisher advanced %d times; the serving tier never saw training progress", pub.Publishes())
	}
	if pub.Version() == 0 {
		t.Fatal("published version never advanced past the initial snapshot")
	}
	// The tier must not have disturbed training itself.
	for i, w := range ws {
		if w.Iterations() != iters {
			t.Fatalf("worker %d completed %d iterations, want %d", i, w.Iterations(), iters)
		}
	}
	if got := srv.MaxStalenessObserved(); got > threshold {
		t.Fatalf("staleness %d exceeded threshold %d", got, threshold)
	}
}
