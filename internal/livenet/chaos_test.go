package livenet

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

// TestWorkerCrashSurvivorsComplete kills 1 of 4 workers mid-run by closing
// its connection. The survivors must finish all their iterations without
// deadlock (the RSP wait must not park forever on the ghost's rows), the
// staleness bound must hold throughout, and the server must record the
// detach.
func TestWorkerCrashSurvivorsComplete(t *testing.T) {
	const workers, threshold, iters = 4, 4, 30
	const crashAt = 8 // victim's iteration count at the kill
	srv, ws, models, cleanup := liveCluster(t, workers, threshold, 21)
	defer cleanup()

	data := newClusterData(17)
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(id int, w *Worker) {
			defer wg.Done()
			r := tensor.NewRNG(uint64(id)*31 + 7)
			for k := 0; int64(k) < iters; k++ {
				if id == 0 && k == crashAt {
					// Crash: the victim's side of the pipe closes abruptly.
					w.conn.Close()
					return
				}
				err := w.RunIteration(func() {
					x, y := data.batch(r, 16)
					_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
					models[id].Backward(g)
				})
				if err != nil {
					if id == 0 {
						return // the victim's in-flight iteration may fail
					}
					t.Errorf("survivor %d iter %d: %v", id, k, err)
					return
				}
			}
		}(i, w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: survivors did not finish after worker 0 crashed")
	}

	for i := 1; i < workers; i++ {
		if got := ws[i].Iterations(); got != iters {
			t.Errorf("survivor %d completed %d/%d iterations", i, got, iters)
		}
	}
	if got := srv.MaxStalenessObserved(); got > threshold {
		t.Errorf("staleness %d exceeded threshold %d under churn", got, threshold)
	}
	// The victim's handler detaches asynchronously; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveWorkers() != workers-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.ActiveWorkers() != workers-1 {
		t.Errorf("active workers = %d, want %d", srv.ActiveWorkers(), workers-1)
	}
	if churn := srv.Churn(); churn.Disconnects < 1 {
		t.Errorf("churn stats recorded no disconnect: %v", churn)
	}
}

// TestWorkerRejoinResumesPushing crashes a worker, lets the survivors run
// on, then reconnects the victim: the rejoin must replay the missed rows,
// fast-forward the victim past the baseline, and let it finish the
// remaining iterations pushing normally — all within the staleness bound.
func TestWorkerRejoinResumesPushing(t *testing.T) {
	const workers, threshold = 4, 4
	// After the survivors stop pushing, the rejoined victim can advance at
	// most threshold−1 iterations past their frozen minimum before RSP
	// (correctly) parks it — so it runs exactly that many after the rejoin.
	const survivorIters, victimFirst, victimAfter = 24, 6, threshold - 1
	srv, ws, models, cleanup := liveCluster(t, workers, threshold, 33)
	defer cleanup()

	data := newClusterData(29)
	compute := func(id int, r *tensor.RNG) func() {
		return func() {
			x, y := data.batch(r, 16)
			_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
			models[id].Backward(g)
		}
	}

	var handlerWG sync.WaitGroup
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		wg.Add(1)
		go func(id int, w *Worker) {
			defer wg.Done()
			r := tensor.NewRNG(uint64(id) + 61)
			for k := 0; k < survivorIters; k++ {
				if err := w.RunIteration(compute(id, r)); err != nil {
					t.Errorf("survivor %d: %v", id, err)
					return
				}
			}
		}(i, ws[i])
	}

	// Victim: run a few iterations, crash, wait for the survivors to pull
	// ahead, then rejoin over a fresh pipe and finish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := ws[0]
		r := tensor.NewRNG(61)
		for k := 0; k < victimFirst; k++ {
			if err := w.RunIteration(compute(0, r)); err != nil {
				t.Errorf("victim pre-crash: %v", err)
				return
			}
		}
		w.conn.Close()
		// Give the server time to notice and the survivors time to advance.
		for srv.ActiveWorkers() == workers {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond)

		c, s := net.Pipe()
		handlerWG.Add(1)
		go func() {
			defer handlerWG.Done()
			if err := srv.HandleConn(0, s); err != nil {
				t.Errorf("rejoin handler: %v", err)
			}
		}()
		if err := w.Rejoin(c); err != nil {
			t.Errorf("rejoin: %v", err)
			return
		}
		if w.Iterations() < victimFirst {
			t.Errorf("rejoin rewound the victim to iteration %d", w.Iterations())
		}
		target := w.Iterations() + victimAfter
		for w.Iterations() < target {
			if err := w.RunIteration(compute(0, r)); err != nil {
				t.Errorf("victim post-rejoin: %v", err)
				return
			}
		}
		w.conn.Close()
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock in crash/rejoin run")
	}
	cleanup()
	handlerWG.Wait()

	if got := srv.MaxStalenessObserved(); got > threshold {
		t.Errorf("staleness %d exceeded threshold %d across rejoin", got, threshold)
	}
	churn := srv.Churn()
	if churn.Disconnects < 1 || churn.Reconnects < 1 {
		t.Errorf("churn stats missed the crash/rejoin cycle: %v", churn)
	}
	if churn.RowsResynced == 0 {
		t.Errorf("rejoin resynced no rows: %v", churn)
	}
}

// TestSilentStallDetaches connects a worker that sends nothing: with an
// IdleTimeout configured, the server must classify the silent stall,
// detach the worker, and return an error from HandleConn.
func TestSilentStallDetaches(t *testing.T) {
	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(3))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	srv, err := NewServer(part, ServerConfig{
		Workers: 2, Threshold: 4, IdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	c, s := net.Pipe()
	defer c.Close()

	var handlerErr atomic.Value
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.HandleConn(0, s); err != nil {
			handlerErr.Store(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled connection was never detached")
	}
	if handlerErr.Load() == nil {
		t.Fatal("silent stall did not surface as an error")
	}
	if srv.ActiveWorkers() != 1 {
		t.Errorf("active workers = %d after stall, want 1", srv.ActiveWorkers())
	}
	if srv.Churn().Disconnects != 1 {
		t.Errorf("churn = %v, want 1 disconnect", srv.Churn())
	}
}

// TestHandleConnRejectsBadWorker checks the membership guard on worker
// indices.
func TestHandleConnRejectsBadWorker(t *testing.T) {
	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(3))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	srv, err := NewServer(part, ServerConfig{Workers: 2, Threshold: 4})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	if err := srv.HandleConn(5, s); err == nil {
		t.Fatal("out-of-range worker accepted")
	}
}

// TestBackoffCapsAndResets exercises the reconnect backoff schedule.
func TestBackoffCapsAndResets(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	b.Jitter = 0 // deterministic bounds for the assertions
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, ms := range want {
		if got := b.Next(); got != ms*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", i, got, ms*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after reset: delay %v, want 10ms", got)
	}

	// With jitter, delays stay within [d·(1−jitter), d] and two backoffs
	// with the same seed replay identically.
	j1 := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 7)
	j2 := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 7)
	for i := 0; i < 6; i++ {
		d1, d2 := j1.Next(), j2.Next()
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, d1, d2)
		}
		base := 10 * time.Millisecond << i
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		lo := time.Duration(float64(base) * 0.8)
		if d1 < lo || d1 > base {
			t.Fatalf("attempt %d: delay %v outside [%v,%v]", i, d1, lo, base)
		}
	}
}
