package livenet

import (
	"net"
	"sync"
	"testing"
	"time"

	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

// throttledConn rate-limits writes, simulating a robot behind an obstacle:
// every chunk of bytes costs wall-clock time proportional to its size.
type throttledConn struct {
	net.Conn
	bytesPerSec float64
}

func (c *throttledConn) Write(p []byte) (int, error) {
	// Throttle in small chunks so deadlines can interrupt mid-frame.
	const chunk = 512
	written := 0
	for written < len(p) {
		end := written + chunk
		if end > len(p) {
			end = len(p)
		}
		n, err := c.Conn.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
		time.Sleep(time.Duration(float64(end-written+n) * float64(time.Second) / c.bytesPerSec))
	}
	return written, nil
}

// TestLiveStragglerStillCompletes runs one worker through a throttled link:
// the team must finish, the staleness bound must hold, and the straggler's
// speculative pushes must deliver fewer rows per iteration than its peers
// (the MTA budget at work) — while its forced rows keep RSP satisfied.
func TestLiveStragglerStillCompletes(t *testing.T) {
	const workers, threshold, iters = 3, 4, 15
	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(5))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	srv, err := NewServer(part, ServerConfig{Workers: workers, Threshold: threshold})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	data := newClusterData(4)
	var models []*nn.Sequential
	var ws []*Worker
	var serverWG sync.WaitGroup
	var conns []net.Conn
	for i := 0; i < workers; i++ {
		m := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		models = append(models, m)
		c, s := net.Pipe()
		conns = append(conns, c, s)
		var workerSide net.Conn = c
		if i == 0 {
			// Worker 0 is the straggler: ~80 KB/s uplink.
			workerSide = &throttledConn{Conn: c, bytesPerSec: 80e3}
		}
		serverWG.Add(1)
		go func(id int, conn net.Conn) {
			defer serverWG.Done()
			if err := srv.HandleConn(id, conn); err != nil {
				t.Errorf("handler %d: %v", id, err)
			}
		}(i, s)
		ws = append(ws, NewWorker(m, part, workerSide, WorkerConfig{
			ID: i, Threshold: threshold, LR: 0.05, Momentum: 0.9,
		}))
	}

	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(id int, w *Worker) {
			defer wg.Done()
			r := tensor.NewRNG(uint64(id) + 55)
			for k := 0; k < iters; k++ {
				if err := w.RunIteration(func() {
					x, y := data.batch(r, 12)
					_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
					models[id].Backward(g)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(i, w)
	}
	wg.Wait()
	for _, c := range conns {
		c.Close()
	}
	srv.Close()
	serverWG.Wait()

	for i, w := range ws {
		if w.Iterations() != iters {
			t.Fatalf("worker %d finished %d iterations", i, w.Iterations())
		}
	}
	if got := srv.MaxStalenessObserved(); got > threshold {
		t.Fatalf("staleness %d exceeded threshold %d under throttling", got, threshold)
	}
}
