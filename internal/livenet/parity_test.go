package livenet

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"rog/internal/core"
	"rog/internal/engine"
	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/tensor"
	"rog/internal/trace"
)

// The parity tests pin the tentpole invariant of the engine extraction: the
// simnet runtime (internal/core, virtual time) and the socket runtime (this
// package, net.Pipe) execute the *same* policy code, so with identical
// deterministic gradient streams they must merge identical per-worker
// (unit, version) sequences and complete identical iteration counts.
//
// Determinism across transports requires gradients independent of model
// parameters (the two runtimes' replicas diverge — pulls apply at different
// wall instants) and no speculative cuts (tiny model, generous budgets), so
// every planned row is delivered on both sides.

type mergeEvent struct {
	unit int
	iter int64
}

const (
	parityWorkers   = 3
	parityThreshold = 4
	parityIters     = 8
)

func parityModel() *nn.Sequential {
	return nn.NewClassifierMLP(5, []int{7}, 3, tensor.NewRNG(1))
}

// fillGrads writes the next slice of worker w's deterministic gradient
// stream straight into the model's gradient matrices — no forward pass, so
// the stream is identical no matter what the parameters hold.
func fillGrads(model *nn.Sequential, rng *tensor.RNG) {
	for _, g := range model.Grads() {
		for i := range g.Data {
			g.Data[i] = rng.Float32()*2 - 1
		}
	}
}

func gradRNG(w int) *tensor.RNG { return tensor.NewRNG(uint64(w)*977 + 13) }

// parityWorkload adapts the gradient streams to the simnet Workload
// interface.
type parityWorkload struct {
	models []*nn.Sequential
	rngs   []*tensor.RNG
}

func newParityWorkload(workers int) *parityWorkload {
	p := &parityWorkload{}
	for w := 0; w < workers; w++ {
		p.models = append(p.models, parityModel())
		p.rngs = append(p.rngs, gradRNG(w))
	}
	return p
}

func (p *parityWorkload) Model(w int) *nn.Sequential { return p.models[w] }
func (p *parityWorkload) ComputeGradients(w int) float64 {
	fillGrads(p.models[w], p.rngs[w])
	return 0
}
func (p *parityWorkload) Evaluate() float64 { return 0 }
func (p *parityWorkload) Increasing() bool  { return true }

// simnetMergeLog runs the strategy on the discrete-event runtime and
// returns the per-worker merge sequences and worker-0 iteration count.
func simnetMergeLog(t *testing.T, strategy core.Strategy) ([][]mergeEvent, int) {
	t.Helper()
	logs := make([][]mergeEvent, parityWorkers)
	cfg := core.Config{
		Strategy:       strategy,
		Workers:        parityWorkers,
		Threshold:      parityThreshold,
		Env:            trace.Outdoor,
		Seed:           11,
		ComputeSeconds: 0.01,
		// A one-byte "paper model" scales the links so fast that no
		// speculative deadline ever cuts a transmission.
		PaperModelBytes: 1.0,
		LR:              0.1,
		MaxIterations:   parityIters,
		OnMerge: func(w, u int, iter int64) {
			logs[w] = append(logs[w], mergeEvent{u, iter})
		},
	}
	res, err := core.Run(cfg, newParityWorkload(parityWorkers))
	if err != nil {
		t.Fatalf("simnet run: %v", err)
	}
	return logs, res.Iterations
}

// livenetMergeLog runs the same policy over net.Pipe connections, driving
// the workers round-robin so the staleness gate never parks a handler.
// shards picks the server's lock split; merge order is shard-independent
// because pushes walk units ascending.
func livenetMergeLog(t *testing.T, policyName string, shards int) ([][]mergeEvent, []int64) {
	t.Helper()
	proto := parityModel()
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	params := engine.Params{
		Workers:   parityWorkers,
		Threshold: parityThreshold,
		NumUnits:  part.NumUnits(),
	}
	serverPolicy, err := engine.New(policyName, params)
	if err != nil {
		t.Fatalf("engine.New(%q): %v", policyName, err)
	}

	logs := make([][]mergeEvent, parityWorkers)
	srv, err := NewServer(part, ServerConfig{
		Workers:   parityWorkers,
		Threshold: parityThreshold,
		Policy:    serverPolicy,
		Shards:    shards,
		// Generous floor: the pipe is microseconds per frame, so neither a
		// pull nor (after the first pull-done) a push is ever cut.
		MTAFloorSeconds: 5,
		OnMerge: func(w, u int, iter int64) {
			logs[w] = append(logs[w], mergeEvent{u, iter})
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	var (
		ws     []*Worker
		models []*nn.Sequential
		conns  []net.Conn
		wg     sync.WaitGroup
	)
	for i := 0; i < parityWorkers; i++ {
		pol, err := engine.New(policyName, params)
		if err != nil {
			t.Fatalf("engine.New(%q): %v", policyName, err)
		}
		m := parityModel()
		models = append(models, m)
		c, s := net.Pipe()
		conns = append(conns, c, s)
		wg.Add(1)
		go func(id int, conn net.Conn) {
			defer wg.Done()
			if err := srv.HandleConn(id, conn); err != nil {
				t.Errorf("server handler %d: %v", id, err)
			}
		}(i, s)
		w := NewWorker(m, part, c, WorkerConfig{
			ID: i, Workers: parityWorkers, Threshold: parityThreshold,
			Policy: pol, LR: 0.1,
		})
		// Pre-seed the budget the first pull-done would deliver, so even the
		// very first push cannot be cut by the cold-start 2 ms default.
		w.budget = 5
		ws = append(ws, w)
	}

	rngs := make([]*tensor.RNG, parityWorkers)
	for i := range rngs {
		rngs[i] = gradRNG(i)
	}
	for k := 0; k < parityIters; k++ {
		for i, w := range ws {
			i := i
			if err := w.RunIteration(func() { fillGrads(models[i], rngs[i]) }); err != nil {
				t.Fatalf("worker %d iter %d: %v", i, k, err)
			}
		}
	}
	for _, c := range conns {
		c.Close()
	}
	srv.Close()
	wg.Wait()

	iters := make([]int64, parityWorkers)
	for i, w := range ws {
		iters[i] = w.Iterations()
	}
	return logs, iters
}

func diffMergeLogs(sim, live [][]mergeEvent) error {
	for w := range sim {
		if len(sim[w]) != len(live[w]) {
			return fmt.Errorf("worker %d merged %d rows on simnet, %d on livenet",
				w, len(sim[w]), len(live[w]))
		}
		for i := range sim[w] {
			if sim[w][i] != live[w][i] {
				return fmt.Errorf("worker %d merge %d: simnet %+v, livenet %+v",
					w, i, sim[w][i], live[w][i])
			}
		}
	}
	return nil
}

func runParity(t *testing.T, strategy core.Strategy, policyName string) {
	simLogs, simIters := simnetMergeLog(t, strategy)
	liveLogs, liveIters := livenetMergeLog(t, policyName, 1)

	if simIters != parityIters {
		t.Fatalf("simnet completed %d iterations, want %d", simIters, parityIters)
	}
	for w, it := range liveIters {
		if it != parityIters {
			t.Fatalf("livenet worker %d completed %d iterations, want %d", w, it, parityIters)
		}
	}
	for w := range simLogs {
		if len(simLogs[w]) == 0 {
			t.Fatalf("worker %d merged nothing on simnet", w)
		}
	}
	if err := diffMergeLogs(simLogs, liveLogs); err != nil {
		t.Fatal(err)
	}
}

func TestParitySSP(t *testing.T) { runParity(t, core.SSP, "ssp") }
func TestParityROG(t *testing.T) { runParity(t, core.ROG, "rog") }

// TestParityShardedServer pins the refactor's parity claim on the socket
// runtime: a server split across 4 shard locks merges exactly the
// per-worker (unit, version) sequences the single-lock server — and
// therefore the simnet reference — produces. Pushes walk units ascending,
// so the shard split changes which lock each merge takes but never the
// order the merges land in.
func TestParityShardedServer(t *testing.T) {
	simLogs, _ := simnetMergeLog(t, core.ROG)
	liveLogs, liveIters := livenetMergeLog(t, "rog", 4)
	for w, it := range liveIters {
		if it != parityIters {
			t.Fatalf("sharded livenet worker %d completed %d iterations, want %d", w, it, parityIters)
		}
	}
	if err := diffMergeLogs(simLogs, liveLogs); err != nil {
		t.Fatal(err)
	}
}
