// Package livenet runs ROG over real byte-stream connections — goroutine
// workers, a parameter-server goroutine, wall-clock speculative timeouts —
// the in-process analogue of the paper's PyTorch implementation (Sec. V).
//
// The discrete-event drivers in internal/core are what the experiments use
// (virtual time, deterministic); livenet demonstrates that the same row
// protocol — 1-bit compressed rows, marker-framed, sent with a deadline and
// discarded mid-frame at expiry, RSP staleness control on the server —
// works over actual sockets. It runs over net.Pipe in tests and over TCP
// via the ordinary net.Conn interface.
package livenet

import (
	"encoding/binary"
	"fmt"
	"math"

	"rog/internal/compress"
)

// Message kinds on the wire. Every frame body starts with one kind byte.
const (
	kindRow        = 'R' // worker→server: one row of gradients for iteration n
	kindPushDone   = 'D' // worker→server: push finished; carries measured MTA time
	kindPull       = 'P' // server→worker: one averaged row
	kindPullDone   = 'E' // server→worker: pull finished; carries new MTA budget
	kindResyncDone = 'Y' // server→worker: rejoin resync finished; carries the baseline iteration and MTA budget
)

// rowMsg encodes a gradient row pushed for iteration iter.
func rowMsg(iter int64, p compress.Payload) []byte {
	body := p.Marshal()
	out := make([]byte, 1+8+len(body))
	out[0] = kindRow
	binary.LittleEndian.PutUint64(out[1:], uint64(iter))
	copy(out[9:], body)
	return out
}

// pushDoneMsg signals the end of a push and reports the worker's measured
// MTA time in seconds.
func pushDoneMsg(iter int64, mtaSeconds float64) []byte {
	out := make([]byte, 1+8+8)
	out[0] = kindPushDone
	binary.LittleEndian.PutUint64(out[1:], uint64(iter))
	binary.LittleEndian.PutUint64(out[9:], math.Float64bits(mtaSeconds))
	return out
}

// pullMsg encodes an averaged row sent back to a worker.
func pullMsg(p compress.Payload) []byte {
	body := p.Marshal()
	out := make([]byte, 1+len(body))
	out[0] = kindPull
	copy(out[1:], body)
	return out
}

// pullDoneMsg signals the end of a pull and distributes the server's
// current MTA-time budget (the straggler's report, Algo. 4) plus the
// global minimum row version — the Min a socket worker's next PushView
// carries (FLOWN's scheduler and any staleness-aware push plan need it).
func pullDoneMsg(budgetSeconds float64, min int64) []byte {
	out := make([]byte, 1+8+8)
	out[0] = kindPullDone
	binary.LittleEndian.PutUint64(out[1:], math.Float64bits(budgetSeconds))
	binary.LittleEndian.PutUint64(out[9:], uint64(min))
	return out
}

// resyncDoneMsg ends a rejoin resync: the preceding kindPull frames carried
// every averaged row the worker missed while detached, baseline is the
// iteration the server re-baselined the worker's rows at (the worker
// fast-forwards its own counter so its next push stays monotone), budget
// seeds the MTA budget for the next push, min the worker's view of the
// global minimum row version, and epoch the server's recovery epoch — it
// increments every time the parameter server restarts from its checkpoint
// store, so a worker can tell a plain reconnect from a reconnect across a
// server crash.
func resyncDoneMsg(baseline int64, budgetSeconds float64, min int64, epoch uint64) []byte {
	out := make([]byte, 1+8+8+8+8)
	out[0] = kindResyncDone
	binary.LittleEndian.PutUint64(out[1:], uint64(baseline))
	binary.LittleEndian.PutUint64(out[9:], math.Float64bits(budgetSeconds))
	binary.LittleEndian.PutUint64(out[17:], uint64(min))
	binary.LittleEndian.PutUint64(out[25:], epoch)
	return out
}

// parsed is one decoded message. The roglint:wire marker holds its fields
// to fixed-width integers and keyed construction (see internal/analysis).
//
//roglint:wire
type parsed struct {
	kind    byte
	iter    int64
	mta     float64 // kindPushDone
	budget  float64 // kindPullDone, kindResyncDone
	min     int64   // kindPullDone, kindResyncDone: global minimum row version
	epoch   uint64  // kindResyncDone: server recovery epoch
	payload compress.Payload
}

func parse(frame []byte) (parsed, error) {
	if len(frame) == 0 {
		return parsed{}, fmt.Errorf("livenet: empty frame")
	}
	switch frame[0] {
	case kindRow:
		if len(frame) < 9 {
			return parsed{}, fmt.Errorf("livenet: short row frame")
		}
		p, err := compress.Unmarshal(frame[9:])
		if err != nil {
			return parsed{}, err
		}
		return parsed{
			kind:    kindRow,
			iter:    int64(binary.LittleEndian.Uint64(frame[1:])),
			payload: p,
		}, nil
	case kindPushDone:
		if len(frame) != 17 {
			return parsed{}, fmt.Errorf("livenet: bad push-done frame")
		}
		return parsed{
			kind: kindPushDone,
			iter: int64(binary.LittleEndian.Uint64(frame[1:])),
			mta:  math.Float64frombits(binary.LittleEndian.Uint64(frame[9:])),
		}, nil
	case kindPull:
		p, err := compress.Unmarshal(frame[1:])
		if err != nil {
			return parsed{}, err
		}
		return parsed{kind: kindPull, payload: p}, nil
	case kindPullDone:
		if len(frame) != 17 {
			return parsed{}, fmt.Errorf("livenet: bad pull-done frame")
		}
		return parsed{
			kind:   kindPullDone,
			budget: math.Float64frombits(binary.LittleEndian.Uint64(frame[1:])),
			min:    int64(binary.LittleEndian.Uint64(frame[9:])),
		}, nil
	case kindResyncDone:
		if len(frame) != 33 {
			return parsed{}, fmt.Errorf("livenet: bad resync-done frame")
		}
		return parsed{
			kind:   kindResyncDone,
			iter:   int64(binary.LittleEndian.Uint64(frame[1:])),
			budget: math.Float64frombits(binary.LittleEndian.Uint64(frame[9:])),
			min:    int64(binary.LittleEndian.Uint64(frame[17:])),
			epoch:  binary.LittleEndian.Uint64(frame[25:]),
		}, nil
	default:
		return parsed{}, fmt.Errorf("livenet: unknown frame kind %q", frame[0])
	}
}
