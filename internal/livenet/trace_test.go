package livenet

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"rog/internal/nn"
	"rog/internal/obs"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

// TestChaosTraceEventsPair is the tracing satellite for the socket runtime:
// a crash/rejoin cycle under a shared JSONL tracer must produce a stream
// whose Detach/Reconnect/Resync events pair up and whose stall intervals
// nest — no StallEnd without a StallBegin, no Reconnect without a Detach.
func TestChaosTraceEventsPair(t *testing.T) {
	const workers, threshold = 4, 4
	const survivorIters, victimFirst = 20, 5

	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	reg := obs.NewRegistry()

	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(33))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	srv, err := NewServer(part, ServerConfig{
		Workers: workers, Threshold: threshold, Trace: tr, Metrics: reg,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	var models []*nn.Sequential
	var ws []*Worker
	var handlerWG sync.WaitGroup
	var conns []net.Conn
	for i := 0; i < workers; i++ {
		m := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		models = append(models, m)
		c, s := net.Pipe()
		conns = append(conns, c, s)
		handlerWG.Add(1)
		go func(id int, conn net.Conn) {
			defer handlerWG.Done()
			// Crash-induced handler errors are the scenario, not failures.
			_ = srv.HandleConn(id, conn)
		}(i, s)
		cfg := WorkerConfig{ID: i, Threshold: threshold, LR: 0.1, Momentum: 0.9}
		if i == 0 {
			cfg.Trace = tr // the victim also traces its iteration spans
		}
		ws = append(ws, NewWorker(m, part, c, cfg))
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
		srv.Close()
		handlerWG.Wait()
	}()

	data := newClusterData(29)
	compute := func(id int, r *tensor.RNG) func() {
		return func() {
			x, y := data.batch(r, 16)
			_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
			models[id].Backward(g)
		}
	}

	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := tensor.NewRNG(uint64(id) + 61)
			for k := 0; k < survivorIters; k++ {
				if err := ws[id].RunIteration(compute(id, r)); err != nil {
					t.Errorf("survivor %d: %v", id, err)
					return
				}
			}
		}(i)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		w := ws[0]
		r := tensor.NewRNG(61)
		for k := 0; k < victimFirst; k++ {
			if err := w.RunIteration(compute(0, r)); err != nil {
				t.Errorf("victim pre-crash: %v", err)
				return
			}
		}
		w.conn.Close()
		for srv.ActiveWorkers() == workers {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond)

		c, s := net.Pipe()
		handlerWG.Add(1)
		go func() {
			defer handlerWG.Done()
			_ = srv.HandleConn(0, s)
		}()
		if err := w.Rejoin(c); err != nil {
			t.Errorf("rejoin: %v", err)
			return
		}
		target := w.Iterations() + int64(threshold-1)
		for w.Iterations() < target {
			if err := w.RunIteration(compute(0, r)); err != nil {
				t.Errorf("victim post-rejoin: %v", err)
				return
			}
		}
		w.conn.Close()
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock in traced crash/rejoin run")
	}
	for _, c := range conns {
		c.Close()
	}
	srv.Close()
	handlerWG.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := obs.Aggregate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.PairErrors) != 0 {
		t.Fatalf("pairing violations in live trace: %v", sum.PairErrors)
	}
	churn := srv.Churn()
	if int(sum.Reconnects) != churn.Reconnects {
		t.Fatalf("trace reconnects = %d, churn = %d", sum.Reconnects, churn.Reconnects)
	}
	if int(sum.ResyncRows) != churn.RowsResynced {
		t.Fatalf("trace resync rows = %d, churn = %d", sum.ResyncRows, churn.RowsResynced)
	}
	if sum.Detaches < 1 || sum.Reconnects < 1 || sum.Resyncs < 1 {
		t.Fatalf("trace missed the crash/rejoin cycle: detach=%d reconnect=%d resync=%d",
			sum.Detaches, sum.Reconnects, sum.Resyncs)
	}
	// The victim traced its iteration spans; real-time composition must be
	// present and non-negative.
	if sum.Iters == 0 {
		t.Fatal("victim traced no IterEnd events")
	}
	comp, comm, stall := sum.Composition()
	if comp < 0 || comm < 0 || stall < 0 {
		t.Fatalf("negative composition %g/%g/%g", comp, comm, stall)
	}
	// Registry counters moved alongside the trace.
	snap := reg.Snapshot()
	if snap.Counters["rows_merged"] == 0 {
		t.Fatal("server registry recorded no merges")
	}
	if snap.Counters["detaches"] == 0 || snap.Counters["reconnects"] == 0 {
		t.Fatalf("server registry missed churn: %+v", snap.Counters)
	}
}

// TestDebugEndpointServesSnapshot starts a server with the opt-in HTTP
// debug endpoint and checks the live registry snapshot comes back as JSON.
func TestDebugEndpointServesSnapshot(t *testing.T) {
	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(7))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	reg := obs.NewRegistry()
	reg.Counter("rows_merged").Add(3)
	srv, err := NewServer(part, ServerConfig{
		Workers: 2, Threshold: 4, Metrics: reg, DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	addr := srv.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr empty after configuring a debug endpoint")
	}
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatalf("GET debug endpoint: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("debug endpoint returned invalid JSON: %v\n%s", err, body)
	}
	if snap.Counters["rows_merged"] != 3 {
		t.Fatalf("snapshot counters = %v, want rows_merged=3", snap.Counters)
	}
}
