package livenet

import (
	"time"

	"rog/internal/tensor"
)

// Backoff computes capped exponential reconnect delays with jitter. The
// jitter is drawn from a seeded deterministic generator, so tests replay
// the same delay sequence while a fleet of real robots (different seeds)
// still desynchronizes its reconnect storms.
type Backoff struct {
	// Base is the first delay; each retry doubles it up to Max.
	Base time.Duration
	// Max caps the un-jittered delay.
	Max time.Duration
	// Jitter in [0,1] is the fraction of the delay randomized: the returned
	// delay is uniform in [d·(1−Jitter), d].
	Jitter float64

	rng     *tensor.RNG
	attempt int
}

// NewBackoff returns a backoff policy with the given base/cap and ±20%
// jitter seeded deterministically.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	return &Backoff{Base: base, Max: max, Jitter: 0.2, rng: tensor.NewRNG(seed)}
}

// Next returns the delay before the next reconnect attempt and advances
// the schedule.
func (b *Backoff) Next() time.Duration {
	d := b.Base << b.attempt
	if d > b.Max || d <= 0 { // <= 0 guards shift overflow
		d = b.Max
	}
	if b.attempt < 62 {
		b.attempt++
	}
	if b.Jitter > 0 && b.rng != nil {
		f := 1 - b.Jitter*b.rng.Float64()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Reset returns the schedule to the base delay, for use after a healthy
// stretch of iterations.
func (b *Backoff) Reset() { b.attempt = 0 }
