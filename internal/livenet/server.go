package livenet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rog/internal/atp"
	"rog/internal/compress"
	"rog/internal/metrics"
	"rog/internal/rowsync"
	"rog/internal/transport"
)

// ServerConfig parameterizes the parameter server.
type ServerConfig struct {
	Workers   int
	Threshold int
	Coeff     atp.Coefficients
	// MTAFloorSeconds lower-bounds the transmission budget so that a cold
	// start or a microsecond in-process pipe never collapses it to zero.
	MTAFloorSeconds float64
	// IdleTimeout detaches a worker whose connection has produced no frame
	// for this long — the silent-stall case where the radio association
	// lingers but the robot is gone. 0 disables stall detection; a vanished
	// worker is then detached only when its connection errors out.
	IdleTimeout time.Duration
}

// DisconnectReason classifies why a worker's connection ended.
type DisconnectReason int

const (
	// DisconnectClean is an orderly shutdown: the peer closed the
	// connection and the stream ended at a frame boundary.
	DisconnectClean DisconnectReason = iota
	// DisconnectError is an abrupt failure: reset, protocol violation, or
	// a mid-frame break.
	DisconnectError
	// DisconnectStall is a silent stall: the link stayed up but no frame
	// arrived within IdleTimeout.
	DisconnectStall
)

// String names the reason.
func (r DisconnectReason) String() string {
	switch r {
	case DisconnectClean:
		return "clean close"
	case DisconnectError:
		return "connection error"
	case DisconnectStall:
		return "silent stall"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Server is the live parameter server (Algo. 2 over real connections).
// It holds no model — only per-worker averaged-gradient copies, row
// versions, and the MTA-time tracker. One goroutine per worker calls
// HandleConn.
//
// Membership: a worker whose connection ends — cleanly, abruptly, or by
// silent stall — is detached: its rows stop holding back the RSP minimum,
// so the survivors keep training with gradient averaging re-normalized to
// the remaining team. A later HandleConn for the same worker re-attaches
// it: the server first replays every averaged row that accumulated while
// the worker was away (the rejoin resync), so the returning robot catches
// up without violating the staleness bound.
type Server struct {
	cfg  ServerConfig
	part *rowsync.Partition

	mu          sync.Mutex
	cond        *sync.Cond
	acc         []*rowsync.GradStore // per-worker averaged copies ḡ^s
	codecs      []*compress.Codec    // per-worker downlink error feedback
	pending     [][]compress.Payload // rows encoded for an in-flight pull
	versions    *rowsync.VersionStore
	serverIter  []int64
	tracker     *atp.TimeTracker
	closed      bool
	churn       metrics.ChurnStats
	detachEpoch int64 // bumped on every detach; attributes wait time to churn
}

// NewServer creates a server for a model decomposed by part. It returns an
// error for configurations that cannot train (fewer than 2 workers, a
// staleness threshold below 2).
func NewServer(part *rowsync.Partition, cfg ServerConfig) (*Server, error) {
	if cfg.Workers < 2 {
		return nil, fmt.Errorf("livenet: need at least 2 workers, got %d", cfg.Workers)
	}
	if cfg.Threshold < 2 {
		return nil, fmt.Errorf("livenet: threshold must be >= 2, got %d", cfg.Threshold)
	}
	if cfg.IdleTimeout < 0 {
		return nil, fmt.Errorf("livenet: negative idle timeout %v", cfg.IdleTimeout)
	}
	if cfg.Coeff == (atp.Coefficients{}) {
		cfg.Coeff = atp.DefaultCoefficients()
	}
	if cfg.MTAFloorSeconds <= 0 {
		cfg.MTAFloorSeconds = 2 * time.Millisecond.Seconds()
	}
	s := &Server{
		cfg:        cfg,
		part:       part,
		versions:   rowsync.NewVersionStore(cfg.Workers, part.NumUnits()),
		serverIter: make([]int64, part.NumUnits()),
		tracker:    atp.NewTimeTracker(cfg.Workers, cfg.MTAFloorSeconds),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.acc = append(s.acc, rowsync.NewGradStore(part))
		s.codecs = append(s.codecs, compress.NewCodec(part.Widths()))
	}
	s.pending = make([][]compress.Payload, cfg.Workers)
	return s, nil
}

// Close wakes any goroutine blocked on the staleness condition so handlers
// can drain after their peers disconnect.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// MaxStalenessObserved reports the largest version lead seen (for tests:
// it must never exceed the threshold).
func (s *Server) MaxStalenessObserved() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions.MaxAhead()
}

// ActiveWorkers reports how many workers are currently attached.
func (s *Server) ActiveWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions.ActiveWorkers()
}

// Churn returns a snapshot of the membership-churn counters.
func (s *Server) Churn() metrics.ChurnStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.churn
}

// HandleConn serves one worker's connection until it ends. It processes
// pushes (Algo. 2 lines 1–6), enforces the RSP wait (lines 7–9), and
// answers each iteration with a speculative pull (lines 10–13). If the
// worker was previously detached, it is re-attached first: the server
// replays all averaged rows accumulated during the absence, then resumes
// the normal protocol. Whatever way the connection ends — clean close,
// abrupt error, or silent stall past IdleTimeout — the worker is detached
// on exit, so RSP never waits on a ghost. Callers must not run two
// handlers for the same worker concurrently.
func (s *Server) HandleConn(worker int, conn net.Conn) error {
	if worker < 0 || worker >= s.cfg.Workers {
		return fmt.Errorf("livenet: worker %d out of range [0,%d)", worker, s.cfg.Workers)
	}
	if err := s.attach(worker, conn); err != nil {
		s.detach(worker)
		return err
	}
	reason, err := s.serve(worker, conn)
	s.detach(worker)
	if reason == DisconnectStall {
		// Kill the stalled connection so a zombie peer cannot hold the
		// socket (and so a late write on its end fails fast).
		conn.Close()
	}
	return err
}

// serve is the receive loop; it reports how the connection ended.
func (s *Server) serve(worker int, conn net.Conn) (DisconnectReason, error) {
	rc := transport.NewReceiver(conn)
	for {
		if s.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
				return DisconnectError, fmt.Errorf("livenet: worker %d: %w", worker, err)
			}
		}
		frame, err := rc.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				// The peer closed the stream at a frame boundary.
				return DisconnectClean, nil
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return DisconnectStall, fmt.Errorf(
					"livenet: worker %d stalled: no frame within %v", worker, s.cfg.IdleTimeout)
			}
			return DisconnectError, fmt.Errorf("livenet: worker %d receive: %w", worker, err)
		}
		msg, err := parse(frame)
		if err != nil {
			return DisconnectError, fmt.Errorf("livenet: worker %d: %w", worker, err)
		}
		switch msg.kind {
		case kindRow:
			s.applyPush(worker, msg)
		case kindPushDone:
			s.mu.Lock()
			if msg.mta > 0 {
				s.tracker.Observe(worker, msg.mta)
			}
			n := msg.iter
			// RSP wait: serve the pull only when worker isn't too far
			// ahead of the slowest row anywhere. Min() spans attached
			// workers only, so a departed teammate cannot park this loop
			// forever; the wait time a detach releases is accounted as
			// churn-attributable stall.
			if !s.closed && n-s.versions.Min() >= int64(s.cfg.Threshold) {
				epoch := s.detachEpoch
				waitStart := time.Now()
				for !s.closed && n-s.versions.Min() >= int64(s.cfg.Threshold) {
					s.cond.Wait()
				}
				if s.detachEpoch != epoch {
					s.churn.DetachStall += time.Since(waitStart).Seconds()
				}
			}
			plan, budget := s.planPullLocked(worker)
			s.mu.Unlock()
			if err := s.sendPull(worker, conn, plan, budget); err != nil {
				return DisconnectError, fmt.Errorf("livenet: worker %d pull send: %w", worker, err)
			}
		default:
			return DisconnectError, fmt.Errorf("livenet: worker %d sent server-bound frame %q", worker, msg.kind)
		}
	}
}

// detach removes the worker from membership: its rows stop pinning the RSP
// minimum and every parked handler re-evaluates its wait. Idempotent.
func (s *Server) detach(worker int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.versions.IsActive(worker) {
		return
	}
	s.versions.Detach(worker)
	s.churn.Disconnects++
	s.detachEpoch++
	// Pull rows cut off mid-flight stay in pending; fold their mass back
	// into the accumulator so nothing is lost across the disconnect.
	for _, p := range s.pending[worker] {
		vals := make([]float32, p.N)
		compress.Decode(p, vals)
		s.acc[worker].AddUnit(p.Row, vals, 1)
	}
	s.pending[worker] = nil
	s.cond.Broadcast()
}

// attach re-admits a previously detached worker: it replays every averaged
// row accumulated during the absence over conn (no deadline — the rejoin
// resync must complete), then re-baselines the worker's versions so its
// next push cannot violate monotonicity or the staleness bound. For a
// worker that was never detached this is a no-op.
func (s *Server) attach(worker int, conn net.Conn) error {
	s.mu.Lock()
	if s.versions.IsActive(worker) {
		s.mu.Unlock()
		return nil
	}
	// Encode the backlog under the lock; send outside it.
	var frames [][]byte
	var payloads []compress.Payload
	for u := 0; u < s.part.NumUnits(); u++ {
		if s.acc[worker].MeanAbs(u) == 0 {
			continue
		}
		payload := s.codecs[worker].Encode(u, s.acc[worker].Unit(u))
		s.acc[worker].ZeroUnit(u)
		payloads = append(payloads, payload)
		frames = append(frames, pullMsg(payload))
	}
	baseline := s.versions.Attach(worker)
	s.churn.Reconnects++
	s.churn.RowsResynced += len(frames)
	budget := s.tracker.Budget()
	if budget < s.cfg.MTAFloorSeconds {
		budget = s.cfg.MTAFloorSeconds
	}
	s.cond.Broadcast() // the rejoined rows may re-gate or release waiters
	s.mu.Unlock()

	sent, err := transport.SendFrames(conn, frames, time.Time{})
	if err == nil {
		_, err = transport.SendFrames(conn, [][]byte{resyncDoneMsg(baseline, budget)}, time.Time{})
	}
	if err != nil {
		// Conserve the undelivered mass; the next attach replays it.
		s.mu.Lock()
		for _, p := range payloads[sent:] {
			vals := make([]float32, p.N)
			compress.Decode(p, vals)
			s.acc[worker].AddUnit(p.Row, vals, 1)
		}
		s.mu.Unlock()
		return fmt.Errorf("livenet: worker %d resync: %w", worker, err)
	}
	return nil
}

// applyPush folds one received row into every worker's averaged copy —
// including detached workers' copies, which accumulate the backlog their
// rejoin resync will replay. Averaging is normalized by the attached team
// size (graceful degradation: N−1 workers average over N−1, not N).
func (s *Server) applyPush(worker int, msg parsed) {
	u := msg.payload.Row
	vals := make([]float32, msg.payload.N)
	compress.Decode(msg.payload, vals)

	s.mu.Lock()
	defer s.mu.Unlock()
	active := s.versions.ActiveWorkers()
	if active == 0 {
		active = s.cfg.Workers
	}
	inv := 1 / float32(active)
	for w := range s.acc {
		s.acc[w].AddUnit(u, vals, inv)
	}
	if msg.iter > s.versions.Get(worker, u) {
		s.versions.Update(worker, u, msg.iter)
	}
	if msg.iter > s.serverIter[u] {
		s.serverIter[u] = msg.iter
	}
	s.cond.Broadcast()
}

// planPullLocked ranks the worker's pending averaged rows (server mode:
// fresher first) and encodes them. Must hold s.mu.
func (s *Server) planPullLocked(worker int) ([][]byte, float64) {
	var rows []atp.RowInfo
	var meanSum float64
	for u := 0; u < s.part.NumUnits(); u++ {
		ma := s.acc[worker].MeanAbs(u)
		if ma == 0 {
			continue
		}
		rows = append(rows, atp.RowInfo{ID: u, MeanAbs: ma, Iter: s.serverIter[u]})
		meanSum += ma
	}
	if meanSum > 0 {
		norm := float64(len(rows)) / meanSum
		for i := range rows {
			rows[i].MeanAbs *= norm
		}
	}
	plan := atp.Rank(rows, atp.Server, s.cfg.Coeff)
	frames := make([][]byte, 0, len(plan))
	payloads := make([]compress.Payload, 0, len(plan))
	for _, u := range plan {
		payload := s.codecs[worker].Encode(u, s.acc[worker].Unit(u))
		s.acc[worker].ZeroUnit(u)
		payloads = append(payloads, payload)
		frames = append(frames, pullMsg(payload))
	}
	budget := s.tracker.Budget()
	if budget < s.cfg.MTAFloorSeconds {
		budget = s.cfg.MTAFloorSeconds
	}
	s.pending[worker] = payloads
	return frames, budget
}

// restoreUnsent re-adds the decoded values of rows the deadline cut off
// back into the worker's accumulator: encode moved (value − residual) into
// the payload, so returning the decoded value conserves the gradient mass
// exactly.
func (s *Server) restoreUnsent(worker, sentFrames int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pending[worker][sentFrames:] {
		vals := make([]float32, p.N)
		compress.Decode(p, vals)
		s.acc[worker].AddUnit(p.Row, vals, 1)
	}
	s.pending[worker] = nil
}

// sendPull transmits the planned rows speculatively within the budget.
// Rows cut off by the deadline — or stranded by a connection failure — are
// restored to the worker's accumulator (mass conserved) and ride a later
// pull or the rejoin resync. The pull-done control frame follows on
// success, carrying the budget for the worker's next push.
func (s *Server) sendPull(worker int, conn net.Conn, frames [][]byte, budget float64) error {
	deadline := time.Now().Add(time.Duration(budget * float64(time.Second)))
	sent, err := transport.SendFrames(conn, frames, deadline)
	s.restoreUnsent(worker, sent)
	if err != nil && err != transport.ErrTimeout {
		return err
	}
	if _, err := transport.SendFrames(conn, [][]byte{pullDoneMsg(budget)}, time.Time{}); err != nil {
		return err
	}
	return nil
}
