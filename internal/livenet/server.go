package livenet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"rog/internal/atp"
	"rog/internal/compress"
	"rog/internal/rowsync"
	"rog/internal/transport"
)

// ServerConfig parameterizes the parameter server.
type ServerConfig struct {
	Workers   int
	Threshold int
	Coeff     atp.Coefficients
	// MTAFloorSeconds lower-bounds the transmission budget so that a cold
	// start or a microsecond in-process pipe never collapses it to zero.
	MTAFloorSeconds float64
}

// Server is the live parameter server (Algo. 2 over real connections).
// It holds no model — only per-worker averaged-gradient copies, row
// versions, and the MTA-time tracker. One goroutine per worker calls
// HandleConn.
type Server struct {
	cfg  ServerConfig
	part *rowsync.Partition

	mu         sync.Mutex
	cond       *sync.Cond
	acc        []*rowsync.GradStore // per-worker averaged copies ḡ^s
	codecs     []*compress.Codec    // per-worker downlink error feedback
	pending    [][]compress.Payload // rows encoded for an in-flight pull
	versions   *rowsync.VersionStore
	serverIter []int64
	tracker    *atp.TimeTracker
	closed     bool
}

// NewServer creates a server for a model decomposed by part.
func NewServer(part *rowsync.Partition, cfg ServerConfig) *Server {
	if cfg.Workers < 2 {
		panic("livenet: need at least 2 workers")
	}
	if cfg.Threshold < 2 {
		panic("livenet: threshold must be >= 2")
	}
	if cfg.Coeff == (atp.Coefficients{}) {
		cfg.Coeff = atp.DefaultCoefficients()
	}
	if cfg.MTAFloorSeconds <= 0 {
		cfg.MTAFloorSeconds = 2 * time.Millisecond.Seconds()
	}
	s := &Server{
		cfg:        cfg,
		part:       part,
		versions:   rowsync.NewVersionStore(cfg.Workers, part.NumUnits()),
		serverIter: make([]int64, part.NumUnits()),
		tracker:    atp.NewTimeTracker(cfg.Workers, cfg.MTAFloorSeconds),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.acc = append(s.acc, rowsync.NewGradStore(part))
		s.codecs = append(s.codecs, compress.NewCodec(part.Widths()))
	}
	s.pending = make([][]compress.Payload, cfg.Workers)
	return s
}

// Close wakes any goroutine blocked on the staleness condition so handlers
// can drain after their peers disconnect.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// MaxStalenessObserved reports the largest version lead seen (for tests:
// it must never exceed the threshold).
func (s *Server) MaxStalenessObserved() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions.MaxAhead()
}

// HandleConn serves one worker's connection until it closes. It processes
// pushes (Algo. 2 lines 1–6), enforces the RSP wait (lines 7–9), and
// answers each iteration with a speculative pull (lines 10–13).
func (s *Server) HandleConn(worker int, conn net.Conn) error {
	defer s.cond.Broadcast()
	rc := transport.NewReceiver(conn)
	for {
		frame, err := rc.Recv()
		if err != nil {
			return nil // connection closed: worker done
		}
		msg, err := parse(frame)
		if err != nil {
			return fmt.Errorf("livenet: worker %d: %w", worker, err)
		}
		switch msg.kind {
		case kindRow:
			s.applyPush(worker, msg)
		case kindPushDone:
			s.mu.Lock()
			if msg.mta > 0 {
				s.tracker.Observe(worker, msg.mta)
			}
			n := msg.iter
			// RSP wait: serve the pull only when worker isn't too far
			// ahead of the slowest row anywhere.
			for !s.closed && n-s.versions.Min() >= int64(s.cfg.Threshold) {
				s.cond.Wait()
			}
			plan, budget := s.planPullLocked(worker)
			s.mu.Unlock()
			if err := s.sendPull(worker, conn, plan, budget); err != nil {
				return err
			}
		default:
			return fmt.Errorf("livenet: worker %d sent server-bound frame %q", worker, msg.kind)
		}
	}
}

// applyPush folds one received row into every worker's averaged copy.
func (s *Server) applyPush(worker int, msg parsed) {
	u := msg.payload.Row
	vals := make([]float32, msg.payload.N)
	compress.Decode(msg.payload, vals)
	inv := 1 / float32(s.cfg.Workers)

	s.mu.Lock()
	defer s.mu.Unlock()
	for w := range s.acc {
		s.acc[w].AddUnit(u, vals, inv)
	}
	if msg.iter > s.versions.Get(worker, u) {
		s.versions.Update(worker, u, msg.iter)
	}
	if msg.iter > s.serverIter[u] {
		s.serverIter[u] = msg.iter
	}
	s.cond.Broadcast()
}

// planPullLocked ranks the worker's pending averaged rows (server mode:
// fresher first) and encodes them. Must hold s.mu.
func (s *Server) planPullLocked(worker int) ([][]byte, float64) {
	var rows []atp.RowInfo
	var meanSum float64
	for u := 0; u < s.part.NumUnits(); u++ {
		ma := s.acc[worker].MeanAbs(u)
		if ma == 0 {
			continue
		}
		rows = append(rows, atp.RowInfo{ID: u, MeanAbs: ma, Iter: s.serverIter[u]})
		meanSum += ma
	}
	if meanSum > 0 {
		norm := float64(len(rows)) / meanSum
		for i := range rows {
			rows[i].MeanAbs *= norm
		}
	}
	plan := atp.Rank(rows, atp.Server, s.cfg.Coeff)
	frames := make([][]byte, 0, len(plan))
	payloads := make([]compress.Payload, 0, len(plan))
	for _, u := range plan {
		payload := s.codecs[worker].Encode(u, s.acc[worker].Unit(u))
		s.acc[worker].ZeroUnit(u)
		payloads = append(payloads, payload)
		frames = append(frames, pullMsg(payload))
	}
	budget := s.tracker.Budget()
	if budget < s.cfg.MTAFloorSeconds {
		budget = s.cfg.MTAFloorSeconds
	}
	s.pending[worker] = payloads
	return frames, budget
}

// restoreUnsent re-adds the decoded values of rows the deadline cut off
// back into the worker's accumulator: encode moved (value − residual) into
// the payload, so returning the decoded value conserves the gradient mass
// exactly.
func (s *Server) restoreUnsent(worker, sentFrames int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pending[worker][sentFrames:] {
		vals := make([]float32, p.N)
		compress.Decode(p, vals)
		s.acc[worker].AddUnit(p.Row, vals, 1)
	}
	s.pending[worker] = nil
}

// sendPull transmits the planned rows speculatively within the budget.
// Rows cut off by the deadline are restored to the worker's accumulator
// (mass conserved) and ride a later pull. The pull-done control frame
// always follows, carrying the budget for the worker's next push.
func (s *Server) sendPull(worker int, conn net.Conn, frames [][]byte, budget float64) error {
	deadline := time.Now().Add(time.Duration(budget * float64(time.Second)))
	sent, err := transport.SendFrames(conn, frames, deadline)
	if err != nil && err != transport.ErrTimeout {
		return err
	}
	s.restoreUnsent(worker, sent)
	if _, err := transport.SendFrames(conn, [][]byte{pullDoneMsg(budget)}, time.Time{}); err != nil {
		return err
	}
	return nil
}
