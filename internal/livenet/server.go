package livenet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"rog/internal/atp"
	"rog/internal/compress"
	"rog/internal/durable"
	"rog/internal/engine"
	"rog/internal/metrics"
	"rog/internal/obs"
	"rog/internal/rowsync"
	"rog/internal/transport"
)

// ServerConfig parameterizes the parameter server.
type ServerConfig struct {
	Workers   int
	Threshold int
	Coeff     atp.Coefficients
	// Shards splits the server state into this many contiguous unit-range
	// shards, each behind its own lock, so pushes landing on different
	// ranges merge in parallel (clamped to [1, NumUnits]; 0 means 1 — the
	// historical single-lock server, which shard 1 reproduces bit-for-bit).
	Shards int
	// Policy overrides the synchronization policy (any engine registry
	// entry). nil selects ROG built from Workers/Threshold/Coeff — the
	// paper's system and the historical default of this package.
	Policy engine.Policy
	// MTAFloorSeconds lower-bounds the transmission budget so that a cold
	// start or a microsecond in-process pipe never collapses it to zero.
	MTAFloorSeconds float64
	// IdleTimeout detaches a worker whose connection has produced no frame
	// for this long — the silent-stall case where the radio association
	// lingers but the robot is gone. 0 disables stall detection; a vanished
	// worker is then detached only when its connection errors out.
	IdleTimeout time.Duration
	// OnMerge, when set, observes every row merged into the server state
	// (worker, unit, stamped version) — instrumentation for the
	// simnet↔livenet parity tests. Called under the owning shard's lock;
	// it must not call back into the server or its state.
	OnMerge func(worker, unit int, iter int64)
	// Trace, when set, receives structured events for every merge, gate
	// stall and membership change, timestamped in seconds since NewServer.
	Trace obs.Tracer
	// Metrics, when set, accumulates the server-side runtime counters
	// (rows merged, staleness histogram, gate blocks, stall seconds, …).
	Metrics *obs.Registry
	// DebugAddr, when non-empty, serves the Metrics snapshot as JSON over
	// HTTP on this listen address ("127.0.0.1:0" picks a free port; see
	// DebugAddr() for the bound address). Empty disables the endpoint.
	DebugAddr string
	// DebugPprof additionally mounts net/http/pprof under /debug/pprof/ on
	// the DebugAddr listener — opt-in runtime profiling for live servers.
	// Ignored when DebugAddr is empty.
	DebugPprof bool
	// Flight, when set, retains the last-N events per worker and dumps the
	// tail when a detach storm hits (see DetachStormCount/Window) — the
	// crash flight recorder. It sees the same event stream as Trace.
	Flight *obs.FlightRecorder
	// DetachStormCount is the number of detaches within DetachStormWindow
	// that triggers a flight dump (default 3). Only meaningful with Flight.
	DetachStormCount int
	// DetachStormWindow is the detach-storm detection window (default 10s).
	DetachStormWindow time.Duration
	// Durable, when set, makes the server crash-consistent: every state
	// transition is journaled to the store's WAL, Checkpoint() rotates full
	// snapshots, and a NewServer over a store that already holds state
	// recovers it (latest valid snapshot + WAL replay) instead of starting
	// fresh — the recovery epoch then increments and reaches every
	// reconnecting worker in its resync-done frame.
	Durable *durable.Store
}

// DisconnectReason classifies why a worker's connection ended.
type DisconnectReason int

const (
	// DisconnectClean is an orderly shutdown: the peer closed the
	// connection and the stream ended at a frame boundary.
	DisconnectClean DisconnectReason = iota
	// DisconnectError is an abrupt failure: reset, protocol violation, or
	// a mid-frame break.
	DisconnectError
	// DisconnectStall is a silent stall: the link stayed up but no frame
	// arrived within IdleTimeout.
	DisconnectStall
)

// String names the reason.
func (r DisconnectReason) String() string {
	switch r {
	case DisconnectClean:
		return "clean close"
	case DisconnectError:
		return "connection error"
	case DisconnectStall:
		return "silent stall"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Server is the live parameter server: the socket Runtime that executes an
// engine policy (Algo. 2 over real connections). It holds no model — the
// shared engine.State carries the per-worker averaged-gradient copies, row
// versions, MTA-time tracker and churn counters; this type owns transport,
// framing, locking and membership detection. One goroutine per worker
// calls HandleConn.
//
// Membership: a worker whose connection ends — cleanly, abruptly, or by
// silent stall — is detached: its rows stop holding back the RSP minimum,
// so the survivors keep training with gradient averaging re-normalized to
// the remaining team. A later HandleConn for the same worker re-attaches
// it: the server first replays every averaged row that accumulated while
// the worker was away (the rejoin resync), so the returning robot catches
// up without violating the staleness bound.
type Server struct {
	cfg   ServerConfig
	part  *rowsync.Partition
	probe *obs.Probe   // nil when tracing and metrics are both off
	debug net.Listener // nil unless cfg.DebugAddr was set

	// Lock order: mu → state's internal locks (State.mu → shard.mu,
	// ascending) → the durable store's. The merge path never takes mu at
	// all — rows batch per push and land through State.MergeBatch under
	// the owning shard locks only; mu guards the residue below plus the
	// gate condition variable.
	mu          sync.Mutex
	cond        *sync.Cond           // signals on mu; set once in NewServer
	state       *engine.State        // internally locked; the pointer itself is set once in NewServer
	codecs      []*compress.Codec    // guarded by mu — per-worker downlink error feedback
	pending     [][]compress.Payload // guarded by mu — rows encoded for an in-flight pull
	closed      bool                 // guarded by mu
	detachEpoch int64                // guarded by mu — bumped on every detach; attributes wait time to churn
	detachTimes []time.Time          // guarded by mu — recent detaches, for storm detection

	// pushSeq[w] counts worker w's pushes — the correlation id on this
	// connection's gate-stall and merge events. Entry w is written only by
	// worker w's handler goroutine (callers must not run two handlers for
	// one worker), so it needs no lock.
	pushSeq []int64
}

// NewServer creates a server for a model decomposed by part. It returns an
// error for configurations that cannot train (fewer than 2 workers, a
// staleness threshold below 2 when the default ROG policy is selected).
func NewServer(part *rowsync.Partition, cfg ServerConfig) (*Server, error) {
	if cfg.Workers < 2 {
		return nil, fmt.Errorf("livenet: need at least 2 workers, got %d", cfg.Workers)
	}
	if cfg.IdleTimeout < 0 {
		return nil, fmt.Errorf("livenet: negative idle timeout %v", cfg.IdleTimeout)
	}
	if cfg.Coeff == (atp.Coefficients{}) {
		cfg.Coeff = atp.DefaultCoefficients()
	}
	if cfg.MTAFloorSeconds <= 0 {
		cfg.MTAFloorSeconds = 2 * time.Millisecond.Seconds()
	}
	if cfg.Policy == nil {
		if cfg.Threshold < 2 {
			return nil, fmt.Errorf("livenet: threshold must be >= 2, got %d", cfg.Threshold)
		}
		pol, err := engine.New("rog", engine.Params{
			Workers:   cfg.Workers,
			Threshold: cfg.Threshold,
			NumUnits:  part.NumUnits(),
			Coeff:     cfg.Coeff,
		})
		if err != nil {
			return nil, err
		}
		cfg.Policy = pol
	}
	if cfg.DetachStormCount <= 0 {
		cfg.DetachStormCount = 3
	}
	if cfg.DetachStormWindow <= 0 {
		cfg.DetachStormWindow = 10 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		part:    part,
		state:   engine.NewStateSharded(cfg.Policy, part, cfg.Workers, cfg.MTAFloorSeconds, cfg.Shards),
		pushSeq: make([]int64, cfg.Workers),
	}
	if cfg.Durable != nil {
		if cfg.Durable.HasState() {
			// A previous server incarnation left durable state behind:
			// recover it instead of training from scratch. No worker is
			// connected to this fresh process, so every recovered-active
			// worker is detached — the first HandleConn for each re-attaches
			// it through the ordinary rejoin resync, which re-baselines its
			// rows and dedupes any pre-crash push it retransmits.
			rec, _, err := cfg.Durable.RecoverSharded(cfg.Policy, part, cfg.Workers, cfg.MTAFloorSeconds, cfg.Shards)
			if err != nil {
				return nil, fmt.Errorf("livenet: recover checkpoint store: %w", err)
			}
			for w := 0; w < cfg.Workers; w++ {
				if rec.Versions.IsActive(w) {
					rec.Detach(w)
				}
			}
			s.state = rec
		} else if err := cfg.Durable.Begin(s.state, nil); err != nil {
			return nil, fmt.Errorf("livenet: begin checkpoint store: %w", err)
		}
	}
	s.state.OnMerge = cfg.OnMerge
	// Event timestamps are seconds since server start: monotone (time.Since
	// uses the monotonic clock) and comparable to the simnet's virtual-time
	// origin, so the same aggregation reads both.
	t0 := time.Now()
	// The flight recorder rides the same event stream as the trace sink;
	// a typed-nil *FlightRecorder must not reach the Tracer interface.
	tr := cfg.Trace
	if cfg.Flight != nil {
		tr = obs.Tee(cfg.Flight, cfg.Trace)
	}
	s.probe = obs.NewProbe(tr, cfg.Metrics, func() float64 { return time.Since(t0).Seconds() })
	s.state.Probe = s.probe
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.codecs = append(s.codecs, compress.NewCodec(part.Widths()))
	}
	s.pending = make([][]compress.Payload, cfg.Workers)
	if cfg.DebugAddr != "" {
		ln, err := net.Listen("tcp", cfg.DebugAddr)
		if err != nil {
			return nil, fmt.Errorf("livenet: debug endpoint: %w", err)
		}
		s.debug = ln
		mux := http.NewServeMux()
		mux.Handle("/", obs.DebugHandler(cfg.Metrics))
		if cfg.DebugPprof {
			// Explicit mounts rather than the DefaultServeMux side effect,
			// so pprof is exposed only when asked for and only here.
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() {
			// Serve returns when Close tears the listener down; that exit
			// path is the expected shutdown, not an error to surface.
			_ = http.Serve(ln, mux)
		}()
	}
	return s, nil
}

// DebugAddr reports the bound address of the metrics debug endpoint, or ""
// when cfg.DebugAddr was empty.
func (s *Server) DebugAddr() string {
	if s.debug == nil {
		return ""
	}
	return s.debug.Addr().String()
}

// Close wakes any goroutine blocked on the staleness condition so handlers
// can drain after their peers disconnect.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.debug != nil {
		_ = s.debug.Close() // shutting down; a close error leaves nothing to recover
	}
}

// Epoch reports the server's recovery epoch: 0 for a fresh (or volatile)
// server, incremented by every recovery from the checkpoint store.
func (s *Server) Epoch() uint64 {
	if s.cfg.Durable == nil {
		return 0
	}
	return s.cfg.Durable.Epoch()
}

// Checkpoint rotates a full snapshot of the server state into the
// checkpoint store (and truncates the WAL). Callers own the cadence — a
// timer, an iteration count, or a signal handler.
func (s *Server) Checkpoint() error {
	if s.cfg.Durable == nil {
		return fmt.Errorf("livenet: no checkpoint store configured")
	}
	// Quiesce the whole state for the snapshot-encode + WAL-rotate pair:
	// with the merge path no longer under s.mu, the shard locks are the
	// only barrier against a merge journaling into a WAL that is being
	// retired.
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	s.state.WithAllLocked(func() {
		err = s.cfg.Durable.Checkpoint(s.state, nil)
	})
	return err
}

// MaxStalenessObserved reports the largest version lead seen (for tests:
// it must never exceed the threshold).
func (s *Server) MaxStalenessObserved() int64 {
	return s.state.MaxAhead()
}

// ActiveWorkers reports how many workers are currently attached.
func (s *Server) ActiveWorkers() int {
	return s.state.ActiveWorkers()
}

// Churn returns a snapshot of the membership-churn counters.
func (s *Server) Churn() metrics.ChurnStats {
	return s.state.ChurnSnapshot()
}

// State exposes the engine state so sidecars can hook its merge stream —
// the serving tier's Publisher attaches through State().RowSink. The
// pointer is set once in NewServer and internally locked; set hooks
// before the first HandleConn, exactly as with OnMerge.
func (s *Server) State() *engine.State {
	return s.state
}

// HandleConn serves one worker's connection until it ends. It processes
// pushes (Algo. 2 lines 1–6), enforces the policy's staleness gate (lines
// 7–9), and answers each iteration with the policy's pull plan (lines
// 10–13). If the worker was previously detached, it is re-attached first:
// the server replays all averaged rows accumulated during the absence, then
// resumes the normal protocol. Whatever way the connection ends — clean
// close, abrupt error, or silent stall past IdleTimeout — the worker is
// detached on exit, so the gate never waits on a ghost. Callers must not
// run two handlers for the same worker concurrently.
func (s *Server) HandleConn(worker int, conn net.Conn) error {
	if worker < 0 || worker >= s.cfg.Workers {
		return fmt.Errorf("livenet: worker %d out of range [0,%d)", worker, s.cfg.Workers)
	}
	if err := s.attach(worker, conn); err != nil {
		s.detach(worker, "resync failure")
		return err
	}
	reason, err := s.serve(worker, conn)
	s.detach(worker, reason.String())
	if reason == DisconnectStall {
		// Kill the stalled connection so a zombie peer cannot hold the
		// socket (and so a late write on its end fails fast).
		conn.Close() //roglint:ignore errdrop best-effort kill of a zombie peer; there is no recovery from a failed close
	}
	return err
}

// pushBatch buffers one in-flight push's rows between the first kindRow
// frame and the pushDone that closes it, so the whole push merges with one
// shard-lock acquisition per contiguous run instead of one lock per row.
type pushBatch struct {
	units []int
	vals  [][]float32
	iters []int64
}

// flushPush merges the buffered rows in arrival order, batched per run of
// equal iteration stamps (in the strict request-response protocol a push's
// rows all carry one stamp; the grouping keeps a malformed interleaving
// correct rather than fast).
func (s *Server) flushPush(worker int, b *pushBatch) {
	for i := 0; i < len(b.units); {
		j := i
		for j < len(b.units) && b.iters[j] == b.iters[i] {
			j++
		}
		s.state.MergeBatch(worker, b.units[i:j], b.vals[i:j], b.iters[i])
		i = j
	}
	b.units, b.vals, b.iters = b.units[:0], b.vals[:0], b.iters[:0]
}

// serve is the receive loop; it reports how the connection ended.
func (s *Server) serve(worker int, conn net.Conn) (DisconnectReason, error) {
	rc := transport.NewReceiver(conn)
	var batch pushBatch
	// A connection that dies mid-push still merges what arrived — the
	// partial-push mass lands before the detach folds state, exactly as
	// the per-row merge path used to guarantee.
	defer s.flushPush(worker, &batch)
	for {
		if s.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
				return DisconnectError, fmt.Errorf("livenet: worker %d: %w", worker, err)
			}
		}
		frame, err := rc.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				// The peer closed the stream at a frame boundary.
				return DisconnectClean, nil
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return DisconnectStall, fmt.Errorf(
					"livenet: worker %d stalled: no frame within %v", worker, s.cfg.IdleTimeout)
			}
			return DisconnectError, fmt.Errorf("livenet: worker %d receive: %w", worker, err)
		}
		msg, err := parse(frame)
		if err != nil {
			return DisconnectError, fmt.Errorf("livenet: worker %d: %w", worker, err)
		}
		switch msg.kind {
		case kindRow:
			// Decode outside any lock; the row merges at pushDone (or at
			// connection end) through the batched per-shard path.
			vals := make([]float32, msg.payload.N)
			compress.Decode(msg.payload, vals)
			batch.units = append(batch.units, msg.payload.Row)
			batch.vals = append(batch.vals, vals)
			batch.iters = append(batch.iters, msg.iter)
		case kindPushDone:
			// The push seq is this connection's correlation id: noted into
			// the engine state before the flush so every merge this push
			// produces carries it, and stamped on the gate-stall events
			// below. Incremented unconditionally (pure memory) so traced
			// and untraced servers behave identically.
			s.pushSeq[worker]++
			seq := s.pushSeq[worker]
			s.state.NotePushSeq(worker, seq)
			s.flushPush(worker, &batch)
			n := msg.iter
			s.state.ObservePush(worker, n, msg.mta, msg.mta, true)
			s.mu.Lock()
			// The flushed merges may release other workers' parked gates.
			s.cond.Broadcast()
			// The staleness gate: serve the pull only when the policy lets
			// the worker advance past iteration n. Min() spans attached
			// workers only, so a departed teammate cannot park this loop
			// forever; the wait time a detach releases is accounted as
			// churn-attributable stall.
			if !s.closed && !s.state.CanAdvance(n) {
				epoch := s.detachEpoch
				waitStart := time.Now()
				// Causal attribution: StallBegin names the (worker, unit,
				// version) pinning the gate's version floor; StallEnd names
				// the merge that last advanced it — the release.
				s.probe.StallBegin(worker, n, seq, "gate", s.state.MinBlocker())
				for !s.closed && !s.state.CanAdvance(n) {
					s.cond.Wait()
				}
				s.probe.StallEnd(worker, n, seq, "gate", time.Since(waitStart).Seconds(), s.state.LastRelease())
				if s.detachEpoch != epoch {
					s.state.AddDetachStall(time.Since(waitStart).Seconds())
				}
			}
			frames, plan, budget, min := s.planPullLocked(worker, n)
			s.mu.Unlock()
			if err := s.sendPull(worker, conn, frames, plan, budget, min); err != nil {
				return DisconnectError, fmt.Errorf("livenet: worker %d pull send: %w", worker, err)
			}
		default:
			return DisconnectError, fmt.Errorf("livenet: worker %d sent server-bound frame %q", worker, msg.kind)
		}
	}
}

// detach removes the worker from membership: its rows stop pinning the
// minimum and every parked handler re-evaluates its wait. Idempotent.
// cause labels the Detach trace event (a DisconnectReason string or an
// attach-failure tag).
func (s *Server) detach(worker int, cause string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.state.IsActive(worker) {
		return
	}
	s.state.Detach(worker)
	s.probe.Detach(worker, s.state.Versions.Min(), cause)
	s.detachEpoch++
	s.noteDetachLocked()
	// Pull rows cut off mid-flight stay in pending; fold their mass back
	// into the accumulator so nothing is lost across the disconnect.
	for _, p := range s.pending[worker] {
		vals := make([]float32, p.N)
		compress.Decode(p, vals)
		s.state.RestoreUnit(worker, p.Row, vals)
	}
	s.pending[worker] = nil
	s.cond.Broadcast()
}

// noteDetachLocked records one detach for storm detection and dumps the
// flight recorder when DetachStormCount detaches landed within
// DetachStormWindow — a fleet-wide connectivity event worth a postmortem
// tail. The recent-detach list resets after a dump so one storm yields one
// dump. Must hold s.mu.
func (s *Server) noteDetachLocked() {
	if s.cfg.Flight == nil {
		return
	}
	now := time.Now()
	keep := s.detachTimes[:0]
	for _, t := range s.detachTimes {
		if now.Sub(t) <= s.cfg.DetachStormWindow {
			keep = append(keep, t)
		}
	}
	s.detachTimes = append(keep, now)
	if len(s.detachTimes) >= s.cfg.DetachStormCount {
		// Best-effort diagnostics; a sink failure must not affect serving.
		_ = s.cfg.Flight.Dump(fmt.Sprintf("detach storm: %d detaches within %v",
			len(s.detachTimes), s.cfg.DetachStormWindow))
		s.detachTimes = s.detachTimes[:0]
	}
}

// attach re-admits a previously detached worker: it replays every averaged
// row accumulated during the absence over conn (no deadline — the rejoin
// resync must complete), then re-baselines the worker's versions so its
// next push cannot violate monotonicity or the staleness bound. For a
// worker that was never detached this is a no-op.
func (s *Server) attach(worker int, conn net.Conn) error {
	if s.state.IsActive(worker) {
		return nil
	}
	// Encode the backlog atomically with its drain (DrainBacklog runs the
	// closure under the owning shard locks, so no concurrent merge can
	// slip mass in between the copy leaving and the zero); send outside
	// every lock.
	var frames [][]byte
	var payloads []compress.Payload
	s.mu.Lock()
	n := s.state.DrainBacklog(worker, func(u int, vals []float32) {
		payload := s.codecs[worker].Encode(u, vals)
		payloads = append(payloads, payload)
		frames = append(frames, pullMsg(payload))
	})
	baseline := s.state.Attach(worker)
	s.state.AddRowsResynced(n)
	s.probe.Reconnect(worker, baseline)
	var resyncBytes float64
	for _, f := range frames {
		resyncBytes += float64(len(f))
	}
	s.probe.Resync(worker, len(frames), resyncBytes)
	budget := s.budgetFloored()
	min := s.state.Versions.Min()
	s.cond.Broadcast() // the rejoined rows may re-gate or release waiters
	s.mu.Unlock()

	sent, err := transport.SendFrames(conn, frames, time.Time{})
	if err == nil {
		_, err = transport.SendFrames(conn, [][]byte{resyncDoneMsg(baseline, budget, min, s.Epoch())}, time.Time{})
	}
	if err != nil {
		// Conserve the undelivered mass; the next attach replays it.
		for _, p := range payloads[sent:] {
			vals := make([]float32, p.N)
			compress.Decode(p, vals)
			s.state.RestoreUnit(worker, p.Row, vals)
		}
		return fmt.Errorf("livenet: worker %d resync: %w", worker, err)
	}
	return nil
}

// budgetFloored is the MTA-time budget clamped to the configured floor.
func (s *Server) budgetFloored() float64 {
	budget := s.state.Budget()
	if budget < s.cfg.MTAFloorSeconds {
		budget = s.cfg.MTAFloorSeconds
	}
	return budget
}

// planPullLocked asks the policy which averaged rows to return to the
// worker after its iteration-n push and encodes them in plan order. Must
// hold s.mu.
func (s *Server) planPullLocked(worker int, n int64) ([][]byte, engine.Plan, float64, int64) {
	plan := s.state.PlanPull(worker, n)
	frames := make([][]byte, 0, len(plan.Units))
	payloads := make([]compress.Payload, 0, len(plan.Units))
	for _, u := range plan.Units {
		var payload compress.Payload
		// Encode-then-drain under the owning shard lock: a merge landing
		// between the two would otherwise vanish with the zero.
		s.state.DrainUnitWith(worker, u, func(vals []float32) {
			payload = s.codecs[worker].Encode(u, vals)
		})
		payloads = append(payloads, payload)
		frames = append(frames, pullMsg(payload))
	}
	s.pending[worker] = payloads
	return frames, plan, s.budgetFloored(), s.state.Versions.Min()
}

// restoreUnsent re-adds the decoded values of rows the deadline cut off
// back into the worker's accumulator: encode moved (value − residual) into
// the payload, so returning the decoded value conserves the gradient mass
// exactly.
func (s *Server) restoreUnsent(worker, sentFrames int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pending[worker][sentFrames:] {
		vals := make([]float32, p.N)
		compress.Decode(p, vals)
		s.state.RestoreUnit(worker, p.Row, vals)
	}
	s.pending[worker] = nil
}

// sendPull transmits the planned rows: speculatively within the budget
// when the plan says so (completing the first plan.Must rows regardless,
// mirroring the push-side MTA floor), or in full with no deadline for
// whole-model plans. Rows cut off by the deadline — or stranded by a
// connection failure — are restored to the worker's accumulator (mass
// conserved) and ride a later pull or the rejoin resync. The pull-done
// control frame follows on success, carrying the budget and the global
// minimum row version for the worker's next push.
func (s *Server) sendPull(worker int, conn net.Conn, frames [][]byte, plan engine.Plan, budget float64, min int64) error {
	deadline := time.Time{}
	if plan.Speculative {
		deadline = time.Now().Add(time.Duration(budget * float64(time.Second)))
	}
	sent, err := transport.SendFrames(conn, frames, deadline)
	if err == transport.ErrTimeout {
		err = nil // the deadline cut is the expected speculative outcome
	}
	if err == nil && sent < plan.Must {
		// Forced continuation: the speculative deadline cut the plan short
		// of its floor; finish the mandatory rows without a deadline.
		var more int
		more, err = transport.SendFrames(conn, frames[sent:plan.Must], time.Time{})
		sent += more
	}
	s.restoreUnsent(worker, sent)
	if err != nil {
		return err
	}
	if _, err := transport.SendFrames(conn, [][]byte{pullDoneMsg(budget, min)}, time.Time{}); err != nil {
		return err
	}
	return nil
}
