package livenet

import (
	"net"
	"sync"
	"testing"
	"time"

	"rog/internal/compress"
	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

// liveCluster spins up a server goroutine per worker connection and returns
// the workers, all over in-process pipes.
func liveCluster(t *testing.T, workers, threshold int, seed uint64) (*Server, []*Worker, []*nn.Sequential, func()) {
	t.Helper()
	proto := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(seed))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	srv, err := NewServer(part, ServerConfig{Workers: workers, Threshold: threshold})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	var models []*nn.Sequential
	var ws []*Worker
	var wg sync.WaitGroup
	var conns []net.Conn
	for i := 0; i < workers; i++ {
		m := nn.NewClassifierMLP(6, []int{10}, 4, tensor.NewRNG(1))
		m.CopyParamsFrom(proto)
		models = append(models, m)
		c, s := net.Pipe()
		conns = append(conns, c, s)
		wg.Add(1)
		go func(id int, conn net.Conn) {
			defer wg.Done()
			if err := srv.HandleConn(id, conn); err != nil {
				t.Errorf("server handler %d: %v", id, err)
			}
		}(i, s)
		ws = append(ws, NewWorker(m, part, c, WorkerConfig{
			ID: i, Threshold: threshold, LR: 0.1, Momentum: 0.9,
		}))
	}
	cleanup := func() {
		for _, c := range conns {
			c.Close()
		}
		srv.Close()
		wg.Wait()
	}
	return srv, ws, models, cleanup
}

// clusterData is a shared synthetic task for live tests.
type clusterData struct {
	centroids [][]float32
}

func newClusterData(seed uint64) *clusterData {
	r := tensor.NewRNG(seed)
	d := &clusterData{}
	for c := 0; c < 4; c++ {
		v := make([]float32, 6)
		for i := range v {
			v[i] = float32(r.Norm() * 2)
		}
		d.centroids = append(d.centroids, v)
	}
	return d
}

func (d *clusterData) batch(r *tensor.RNG, n int) (*tensor.Matrix, []int) {
	x := tensor.New(n, 6)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(4)
		y[i] = c
		for j := 0; j < 6; j++ {
			x.Set(i, j, d.centroids[c][j]+float32(r.Norm()))
		}
	}
	return x, y
}

func TestLiveTrainingConvergesAndBoundsStaleness(t *testing.T) {
	const workers, threshold, iters = 3, 4, 40
	srv, ws, models, cleanup := liveCluster(t, workers, threshold, 5)

	data := newClusterData(9)
	evalX, evalY := data.batch(tensor.NewRNG(123), 200)
	before := nn.Accuracy(models[0].Forward(evalX), evalY)

	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(id int, w *Worker) {
			defer wg.Done()
			r := tensor.NewRNG(uint64(id)*31 + 7)
			for k := 0; k < iters; k++ {
				err := w.RunIteration(func() {
					x, y := data.batch(r, 16)
					_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
					models[id].Backward(g)
				})
				if err != nil {
					t.Errorf("worker %d iter %d: %v", id, k, err)
					return
				}
			}
		}(i, w)
	}
	wg.Wait()
	cleanup()

	for i, w := range ws {
		if w.Iterations() != iters {
			t.Fatalf("worker %d completed %d iterations", i, w.Iterations())
		}
	}
	if got := srv.MaxStalenessObserved(); got > threshold {
		t.Fatalf("staleness %d exceeded threshold %d", got, threshold)
	}
	// The live run must actually learn.
	best := before
	for _, m := range models {
		if acc := nn.Accuracy(m.Forward(evalX), evalY); acc > best {
			best = acc
		}
	}
	if best < before+0.15 {
		t.Fatalf("live training did not learn: %.3f -> %.3f", before, best)
	}
}

func TestLiveReplicasStayClose(t *testing.T) {
	// RSP bounds divergence; after a joint run, replicas must be close
	// (not identical — different rows sync at different times).
	const workers, threshold, iters = 3, 4, 25
	_, ws, models, cleanup := liveCluster(t, workers, threshold, 11)
	data := newClusterData(3)

	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(id int, w *Worker) {
			defer wg.Done()
			r := tensor.NewRNG(uint64(id) + 100)
			for k := 0; k < iters; k++ {
				if err := w.RunIteration(func() {
					x, y := data.batch(r, 16)
					_, g := nn.SoftmaxCrossEntropy(models[id].Forward(x), y)
					models[id].Backward(g)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(i, w)
	}
	wg.Wait()
	cleanup()

	p0 := models[0].Params()
	for wIdx := 1; wIdx < workers; wIdx++ {
		pw := models[wIdx].Params()
		var diff, norm float64
		for i := range p0 {
			for j := range p0[i].Data {
				d := float64(p0[i].Data[j] - pw[i].Data[j])
				diff += d * d
				norm += float64(p0[i].Data[j]) * float64(p0[i].Data[j])
			}
		}
		if diff > norm {
			t.Fatalf("replica %d diverged: relative diff %.3f", wIdx, diff/norm)
		}
	}
}

func TestServerConfigValidation(t *testing.T) {
	proto := nn.NewClassifierMLP(4, []int{4}, 2, tensor.NewRNG(1))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	for name, cfg := range map[string]ServerConfig{
		"workers":     {Workers: 1, Threshold: 4},
		"threshold":   {Workers: 3, Threshold: 1},
		"idleTimeout": {Workers: 3, Threshold: 4, IdleTimeout: -time.Second},
	} {
		if _, err := NewServer(part, cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := NewServer(part, ServerConfig{Workers: 2, Threshold: 2}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestProtocolRoundtrip(t *testing.T) {
	p := compressPayload(t)
	for _, tc := range []struct {
		name  string
		frame []byte
		kind  byte
	}{
		{"row", rowMsg(7, p), kindRow},
		{"pushDone", pushDoneMsg(7, 1.25), kindPushDone},
		{"pull", pullMsg(p), kindPull},
		{"pullDone", pullDoneMsg(0.5, 3), kindPullDone},
		{"resyncDone", resyncDoneMsg(9, 0.25, 4, 2), kindResyncDone},
	} {
		msg, err := parse(tc.frame)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if msg.kind != tc.kind {
			t.Fatalf("%s: kind %q", tc.name, msg.kind)
		}
	}
	if m, err := parse(pushDoneMsg(7, 1.25)); err != nil || m.iter != 7 || m.mta != 1.25 {
		t.Fatalf("pushDone fields: %+v %v", m, err)
	}
	if m, _ := parse(pullDoneMsg(0.5, 3)); m.budget != 0.5 || m.min != 3 {
		t.Fatalf("pullDone fields: %+v", m)
	}
	if m, _ := parse(resyncDoneMsg(9, 0.25, 4, 2)); m.iter != 9 || m.budget != 0.25 || m.min != 4 || m.epoch != 2 {
		t.Fatalf("resyncDone fields: %+v", m)
	}
	for _, bad := range [][]byte{{}, {'Z', 1}, {kindRow, 1}, {kindPushDone, 1, 2}, {kindResyncDone, 1}} {
		if _, err := parse(bad); err == nil {
			t.Fatalf("bad frame %v accepted", bad)
		}
	}
}

func compressPayload(t *testing.T) compress.Payload {
	t.Helper()
	c := compress.NewCodec([]int{8})
	return c.Encode(0, []float32{1, -2, 3, -4, 5, -6, 7, -8})
}
