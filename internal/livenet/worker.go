package livenet

import (
	"fmt"
	"net"
	"time"

	"rog/internal/atp"
	"rog/internal/compress"
	"rog/internal/engine"
	"rog/internal/nn"
	"rog/internal/obs"
	"rog/internal/rowsync"
	"rog/internal/transport"
)

// WorkerConfig parameterizes one live worker.
type WorkerConfig struct {
	ID        int
	Workers   int // team size; defaults to ID+1 (only per-worker policy state needs it)
	Threshold int
	Coeff     atp.Coefficients
	// Policy overrides the synchronization policy. nil selects ROG built
	// from Workers/Threshold/Coeff. Must decide like the server's policy —
	// the pair executes one strategy split across the wire.
	Policy   engine.Policy
	LR       float64
	Momentum float64
	// Trace, when set, receives the worker-side event stream (iteration
	// spans, push plans, rows sent), timestamped in seconds since NewWorker.
	Trace obs.Tracer
	// Metrics, when set, accumulates worker-side runtime counters.
	Metrics *obs.Registry
}

// Worker is the live client (Algo. 1 over a real connection): the socket
// Runtime's worker half. It accumulates locally computed gradients per row,
// transmits whatever its policy plans — speculatively under the
// server-distributed MTA budget when the plan says so — and applies
// whatever averaged rows the pull delivers.
type Worker struct {
	cfg    WorkerConfig
	part   *rowsync.Partition
	model  *nn.Sequential
	opt    *nn.SGD
	policy engine.Policy

	local    *rowsync.GradStore
	pushIter []int64
	codec    *compress.Codec
	conn     net.Conn
	rc       *transport.Receiver
	probe    *obs.Probe // nil when tracing and metrics are both off

	iter    int64
	planSeq int64   // push plans made (incl. skips) — correlation id on trace events
	budget  float64 // MTA-time budget from the server's last pull-done
	minVer  int64   // global minimum row version, from the last pull-done
	epoch   uint64  // server recovery epoch, from the last resync-done
}

// NewWorker wires a worker to its model and server connection.
func NewWorker(model *nn.Sequential, part *rowsync.Partition, conn net.Conn, cfg WorkerConfig) *Worker {
	if cfg.Coeff == (atp.Coefficients{}) {
		cfg.Coeff = atp.DefaultCoefficients()
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	if cfg.Workers <= cfg.ID {
		cfg.Workers = cfg.ID + 1
	}
	if cfg.Policy == nil {
		pol, err := engine.New("rog", engine.Params{
			Workers:   cfg.Workers,
			Threshold: cfg.Threshold,
			NumUnits:  part.NumUnits(),
			Coeff:     cfg.Coeff,
		})
		if err != nil {
			panic(err) // unreachable: "rog" is always registered
		}
		cfg.Policy = pol
	}
	t0 := time.Now()
	return &Worker{
		cfg:      cfg,
		part:     part,
		probe:    obs.NewProbe(cfg.Trace, cfg.Metrics, func() float64 { return time.Since(t0).Seconds() }),
		model:    model,
		opt:      nn.NewSGD(cfg.LR, cfg.Momentum),
		policy:   cfg.Policy,
		local:    rowsync.NewGradStore(part),
		pushIter: make([]int64, part.NumUnits()),
		codec:    compress.NewCodec(part.Widths()),
		conn:     conn,
		rc:       transport.NewReceiver(conn),
		budget:   2 * time.Millisecond.Seconds(),
	}
}

// Iterations returns the number of completed iterations.
func (w *Worker) Iterations() int64 { return w.iter }

// Epoch reports the server recovery epoch the worker last resynced
// against: 0 until a rejoin, then whatever the resync-done frame carried —
// so it advances exactly when the worker rode out a server restart.
func (w *Worker) Epoch() uint64 { return w.epoch }

// RunIteration performs one training iteration: computeGradients must run
// the forward/backward pass on the worker's model (filling its gradient
// matrices); the worker then pushes what its policy plans, waits for the
// averaged pull and applies it. A policy may skip the synchronization
// entirely (FLOWN's scheduler); the local gradients then keep accumulating
// and ride the next planned push.
func (w *Worker) RunIteration(computeGradients func()) error {
	w.iter++
	n := w.iter
	w.probe.IterStart(w.cfg.ID, n)
	iterStart := time.Now()
	computeGradients()
	w.local.Accumulate(w.model.Grads())
	w.model.ZeroGrads()
	compute := time.Since(iterStart).Seconds()

	commStart := time.Now()
	skipped, err := w.push(n)
	if err != nil {
		return err
	}
	if !skipped {
		if err := w.pull(); err != nil {
			return err
		}
	}
	// The worker cannot split the server's gate wait out of the pull
	// round-trip, so comm here includes any staleness stall spent on the
	// server side; the stall residual only covers local scheduling slack.
	comm := time.Since(commStart).Seconds()
	stall := time.Since(iterStart).Seconds() - compute - comm
	if stall < 0 {
		stall = 0
	}
	w.probe.IterEnd(w.cfg.ID, n, compute, comm, stall)
	return nil
}

// push implements Algo. 1 PushGradients: the policy plans the transmission
// (rank, forced rows, MTA floor — Algo. 3/4 for ROG), the worker sends it —
// under the budget deadline when the plan is speculative, completing the
// first plan.Must rows regardless — and reports the measured MTA time.
// It reports skipped=true when the policy sat this iteration out.
func (w *Worker) push(n int64) (skipped bool, err error) {
	numUnits := w.part.NumUnits()
	rows := make([]atp.RowInfo, numUnits)
	for u := 0; u < numUnits; u++ {
		rows[u] = atp.RowInfo{ID: u, MeanAbs: w.local.MeanAbs(u), Iter: w.pushIter[u]}
	}
	plan := w.policy.PlanPush(engine.PushView{
		Worker: w.cfg.ID,
		Iter:   n,
		Rows:   rows,
		Min:    w.minVer,
		Budget: w.budget,
	})
	w.planSeq++
	seq := w.planSeq
	if plan.Skip {
		w.probe.PushPlanned(w.cfg.ID, n, seq, 0, 0, numUnits, 0, false, "skip")
		return true, nil
	}
	must := plan.Must
	if must > len(plan.Units) {
		must = len(plan.Units)
	}
	ap := atp.NewPlanObserved(plan.Units, func(u int) float64 { return float64(w.part.WireSize(u)) }, w.probe)
	w.probe.PushPlanned(w.cfg.ID, n, seq, len(ap.Units), must,
		numUnits-len(ap.Units), ap.TotalBytes(), plan.Speculative, "")

	frames := make([][]byte, len(plan.Units))
	payloads := make([]compress.Payload, len(plan.Units))
	for i, u := range plan.Units {
		payloads[i] = w.codec.Encode(u, w.local.Unit(u))
		w.local.ZeroUnit(u)
		frames[i] = rowMsg(n, payloads[i])
	}

	start := time.Now()
	deadline := time.Time{}
	if plan.Speculative {
		deadline = start.Add(time.Duration(w.budget * float64(time.Second)))
	}
	sent, serr := transport.SendFrames(w.conn, frames, deadline)
	var sendErr error
	if serr != nil && serr != transport.ErrTimeout {
		sendErr = serr
	}
	if sendErr == nil && sent < must {
		// Forced continuation (Algo. 4 lines 4–7): finish the MTA floor
		// and any rows at the staleness bound, without a deadline.
		more, serr := transport.SendFrames(w.conn, frames[sent:must], time.Time{})
		sent += more
		if serr != nil {
			sendErr = serr
		}
	}
	elapsed := time.Since(start).Seconds()
	w.probe.RowsSent(w.cfg.ID, n, seq, obs.DirPush, sent, ap.Prefix[sent], elapsed, plan.Speculative)
	mtaTime := elapsed
	if sent > must && ap.Prefix[sent] > 0 {
		// Everything (or more than the floor) fit in the budget: the floor's
		// share of the measured time, weighted by actual bytes on the wire.
		mtaTime = elapsed * ap.Prefix[must] / ap.Prefix[sent]
	}
	// Bookkeeping: delivered rows are version-stamped; undelivered rows get
	// their mass back (the partial frame at the cut was discarded by the
	// receiver's resync). This runs even when the connection broke, so a
	// push interrupted by a crash conserves the gradient mass for the push
	// after the worker reconnects.
	for i, u := range plan.Units {
		if i < sent {
			w.pushIter[u] = n
			continue
		}
		vals := make([]float32, payloads[i].N)
		compress.Decode(payloads[i], vals)
		w.local.AddUnit(u, vals, 1)
	}
	if sendErr != nil {
		return false, fmt.Errorf("livenet: worker %d push: %w", w.cfg.ID, sendErr)
	}
	w.policy.ObservePush(w.cfg.ID, n, elapsed)
	_, serr = transport.SendFrames(w.conn, [][]byte{pushDoneMsg(n, mtaTime)}, time.Time{})
	return false, serr
}

// pull consumes averaged rows until the pull-done control frame, applying
// each to the model (Algo. 1 PullAveragedGradients). The control frame also
// refreshes the worker's view of the MTA budget and the global minimum row
// version its next push plan sees.
func (w *Worker) pull() error {
	for {
		frame, err := w.rc.Recv()
		if err != nil {
			return fmt.Errorf("livenet: worker %d pull: %w", w.cfg.ID, err)
		}
		msg, err := parse(frame)
		if err != nil {
			return err
		}
		switch msg.kind {
		case kindPull:
			vals := make([]float32, msg.payload.N)
			compress.Decode(msg.payload, vals)
			w.applyUnit(msg.payload.Row, vals)
		case kindPullDone:
			if msg.budget > 0 {
				w.budget = msg.budget
			}
			w.minVer = msg.min
			return nil
		default:
			return fmt.Errorf("livenet: worker %d got frame %q during pull", w.cfg.ID, msg.kind)
		}
	}
}

// Rejoin resumes the worker over a fresh connection after a disconnect.
// The server answers a rejoining worker with the resync stream: every
// averaged row accumulated while the worker was away, terminated by a
// resync-done frame carrying the baseline iteration its versions were
// re-baselined at. The worker applies the backlog and fast-forwards its
// iteration counter to the baseline so its next push stays monotone and
// inside the staleness bound.
func (w *Worker) Rejoin(conn net.Conn) error {
	w.conn = conn
	w.rc = transport.NewReceiver(conn)
	for {
		frame, err := w.rc.Recv()
		if err != nil {
			return fmt.Errorf("livenet: worker %d resync: %w", w.cfg.ID, err)
		}
		msg, err := parse(frame)
		if err != nil {
			return err
		}
		switch msg.kind {
		case kindPull:
			vals := make([]float32, msg.payload.N)
			compress.Decode(msg.payload, vals)
			w.applyUnit(msg.payload.Row, vals)
		case kindResyncDone:
			if msg.iter > w.iter {
				w.iter = msg.iter
			}
			for u := range w.pushIter {
				if w.pushIter[u] < w.iter {
					w.pushIter[u] = w.iter
				}
			}
			if msg.budget > 0 {
				w.budget = msg.budget
			}
			w.minVer = msg.min
			w.epoch = msg.epoch
			return nil
		default:
			return fmt.Errorf("livenet: worker %d got frame %q during resync", w.cfg.ID, msg.kind)
		}
	}
}

// RunResilient runs iterations until the worker has completed iters of
// them, reconnecting through dial with backoff b whenever the connection
// fails. A dropped iteration's compute is lost but its gradient mass is
// conserved locally and rides the first push after the rejoin. It gives up
// after maxRetries consecutive failed reconnect attempts.
func (w *Worker) RunResilient(iters int, computeGradients func(), dial func() (net.Conn, error), b *Backoff, maxRetries int) error {
	for w.iter < int64(iters) {
		err := w.RunIteration(computeGradients)
		if err == nil {
			b.Reset()
			continue
		}
		_ = w.conn.Close() // the connection already failed; nothing to do about a close error
		rejoined := false
		for attempt := 0; attempt < maxRetries; attempt++ {
			time.Sleep(b.Next())
			conn, derr := dial()
			if derr != nil {
				continue
			}
			if rerr := w.Rejoin(conn); rerr != nil {
				_ = conn.Close() // resync failed; discard the half-open connection
				continue
			}
			rejoined = true
			break
		}
		if !rejoined {
			return fmt.Errorf("livenet: worker %d gave up after %d reconnect attempts: %w",
				w.cfg.ID, maxRetries, err)
		}
	}
	return nil
}

// applyUnit applies one averaged gradient unit to the model via per-row
// SGD momentum.
func (w *Worker) applyUnit(u int, vals []float32) {
	params := w.model.Params()
	un := w.part.Unit(u)
	p := params[un.Param]
	row := un.Offset / p.Cols
	if un.Offset%p.Cols == 0 && un.Len == p.Cols {
		w.opt.ApplyRow(params, un.Param, row, vals)
		return
	}
	lr := float32(w.opt.LR)
	dst := p.Data[un.Offset : un.Offset+un.Len]
	for i := range dst {
		dst[i] -= lr * vals[i]
	}
}
