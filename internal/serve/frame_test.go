package serve

import (
	"strings"
	"testing"
)

func TestRequestFrameRoundTrip(t *testing.T) {
	cases := []RequestFrame{
		{ID: 1, MinVersion: 0, Input: []float32{1, 2, 3}},
		{ID: 1<<63 + 7, MinVersion: -3, Input: nil},
		{ID: 42, MinVersion: 1 << 40, Input: make([]float32, 257)},
	}
	for _, want := range cases {
		got, err := DecodeRequest(EncodeRequest(want))
		if err != nil {
			t.Fatalf("roundtrip %+v: %v", want, err)
		}
		if got.ID != want.ID || got.MinVersion != want.MinVersion || len(got.Input) != len(want.Input) {
			t.Fatalf("roundtrip mismatch: got %+v want %+v", got, want)
		}
		for i := range want.Input {
			if got.Input[i] != want.Input[i] {
				t.Fatalf("input[%d] = %v, want %v", i, got.Input[i], want.Input[i])
			}
		}
	}
}

func TestReplyFrameRoundTrip(t *testing.T) {
	want := ReplyFrame{ID: 9, Version: 12, Seq: 4, Output: []float32{-0.5, 3.25}}
	got, err := DecodeReply(EncodeReply(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Version != want.Version || got.Seq != want.Seq {
		t.Fatalf("roundtrip mismatch: got %+v want %+v", got, want)
	}
	for i := range want.Output {
		if got.Output[i] != want.Output[i] {
			t.Fatalf("output[%d] = %v, want %v", i, got.Output[i], want.Output[i])
		}
	}
}

func TestDecodeRejectsMalformedFrames(t *testing.T) {
	valid := EncodeRequest(RequestFrame{ID: 7, MinVersion: 2, Input: []float32{1, 2}})
	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"header cut", valid[:10], "truncated"},
		{"wrong kind", EncodeReply(ReplyFrame{ID: 7}), "not a request"},
		{"vector cut", valid[:len(valid)-3], "payload bytes"},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xAA), "payload bytes"},
		{"inflated length", func() []byte {
			b := append([]byte(nil), valid...)
			b[17], b[18], b[19], b[20] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}(), "exceeds max"},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.b); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := DecodeReply(valid); err == nil || !strings.Contains(err.Error(), "not a reply") {
		t.Fatalf("reply decode of a request: err = %v", err)
	}
	if _, err := DecodeReply(valid[:4]); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("reply decode of a stub: err = %v", err)
	}
}

// FuzzServeFrameDecode mirrors transport's FuzzRecv for the serve payload
// layer: the decoders must never panic, and anything they accept must
// re-encode to the identical byte string (the frames are canonical — one
// encoding per value).
func FuzzServeFrameDecode(f *testing.F) {
	f.Add(EncodeRequest(RequestFrame{ID: 3, MinVersion: 1, Input: []float32{0.5, -2}}))
	f.Add(EncodeReply(ReplyFrame{ID: 3, Version: 5, Seq: 2, Output: []float32{1}}))
	f.Add(EncodeRequest(RequestFrame{ID: 1}))
	f.Add([]byte{})
	f.Add([]byte{'Q'})
	f.Add([]byte{'S', 1, 2, 3})
	truncated := EncodeRequest(RequestFrame{ID: 8, Input: []float32{9, 9, 9}})
	f.Add(truncated[:len(truncated)-2])
	inflated := EncodeReply(ReplyFrame{ID: 8, Output: []float32{1, 2}})
	f.Add(append(inflated[:25], 0xFF, 0xFF, 0xFF, 0xFF))
	f.Add(append([]byte("garbage \xF0\x9F"), EncodeRequest(RequestFrame{ID: 2})...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil {
			re := EncodeRequest(req)
			if string(re) != string(data) {
				t.Fatalf("accepted request is not canonical:\n in  %x\n out %x", data, re)
			}
			if len(req.Input) > MaxVectorLen {
				t.Fatalf("accepted input of %d floats past MaxVectorLen", len(req.Input))
			}
		}
		if rep, err := DecodeReply(data); err == nil {
			re := EncodeReply(rep)
			if string(re) != string(data) {
				t.Fatalf("accepted reply is not canonical:\n in  %x\n out %x", data, re)
			}
			if len(rep.Output) > MaxVectorLen {
				t.Fatalf("accepted output of %d floats past MaxVectorLen", len(rep.Output))
			}
		}
	})
}
