package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"rog/internal/engine"
	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

// TestStressSnapshotPrefixConsistency is the torn-read proof for the
// serving tier, meant to run under -race. W workers concurrently merge
// deterministic updates while readers continuously grab snapshots and
// check, for every row, that its bytes are bit-identical to some prefix of
// that row's applied-update sequence — i.e. no request can ever observe a
// row mid-write or a shard mixing updates out of order.
//
// The construction makes every prefix enumerable: each unit u is always
// merged with the same vector c_u, and with all W workers attached the
// engine's averaging scale is the constant 1/W, so the shadow row after k
// absorbs is exactly `init - k applications of step·c_u` in float32 —
// independent of which workers' merges those k were or how they
// interleaved. The readers then assert three invariants per snapshot:
//
//  1. every row matches a precomputed prefix state k (no torn rows);
//  2. within one shard, k is non-increasing across ascending units and
//     spans at most W (the shard was captured atomically: its rows are one
//     instant of its lock-serialized absorb order, in which each worker
//     walks units ascending);
//  3. per unit, k never decreases across snapshot sequence numbers, and a
//     snapshot at version v has k ≥ W·v everywhere (version-v publication
//     implies all W workers merged iterations 1..v into every unit).
func TestStressSnapshotPrefixConsistency(t *testing.T) {
	const (
		workers = 4
		iters   = 60
		readers = 3
	)
	model := nn.NewClassifierMLP(4, []int{6}, 3, tensor.NewRNG(7))
	part := rowsync.NewPartition(model.Params(), rowsync.Rows)
	units := part.NumUnits()
	pol, err := engine.New("rog", engine.Params{Workers: workers, Threshold: 1 << 30, NumUnits: units})
	if err != nil {
		t.Fatal(err)
	}
	st := engine.NewStateSharded(pol, part, workers, 1.0, 4)
	const lr = 1.0
	pub := NewPublisher(st, part, model.Params(), lr)

	// The constant per-unit update vectors and the resulting prefix table:
	// prefix[u][k] is row u's exact float32 state after k absorbs, keyed by
	// its raw bit pattern for the readers' lookup.
	step := float32(lr) * (1 / float32(workers)) // the engine's averaging scale
	upd := make([][]float32, units)
	prefixOf := make([]map[string]int, units)
	maxK := workers * iters
	for u := 0; u < units; u++ {
		n := part.Unit(u).Len
		c := make([]float32, n)
		for i := range c {
			c[i] = 0.003*float32(u+1) + 0.0007*float32(i+1)
		}
		upd[u] = c
		row := append([]float32(nil), part.Slice(model.Params(), u)...)
		prefixOf[u] = make(map[string]int, maxK+1)
		for k := 0; k <= maxK; k++ {
			key := rowKey(row)
			if _, dup := prefixOf[u][key]; !dup {
				prefixOf[u][key] = k
			}
			for i := range row {
				row[i] -= step * c[i]
			}
		}
	}

	sm := st.ShardMap()
	var stop atomic.Bool
	var mergeWG, readWG sync.WaitGroup
	errc := make(chan error, workers+readers)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
		stop.Store(true)
	}

	for w := 0; w < workers; w++ {
		mergeWG.Add(1)
		go func(w int) {
			defer mergeWG.Done()
			// Private copies: Merge holds vals across the shard lock.
			mine := make([][]float32, units)
			for u := range mine {
				mine[u] = append([]float32(nil), upd[u]...)
			}
			for it := int64(1); it <= iters && !stop.Load(); it++ {
				for u := 0; u < units; u++ {
					st.Merge(w, u, mine[u], it)
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			lastK := make([]int, units)
			lastSeq := int64(0)
			for !stop.Load() {
				snap := pub.Current()
				ks := make([]int, units)
				for u := 0; u < units; u++ {
					k, ok := prefixOf[u][rowKey(snap.Row(u))]
					if !ok {
						fail("snapshot seq %d: unit %d row matches no prefix state — torn read", snap.Seq(), u)
						return
					}
					ks[u] = k
					if minK := workers * int(snap.Version()); k < minK {
						fail("snapshot seq %d at version %d: unit %d has only %d absorbs, need ≥ %d",
							snap.Seq(), snap.Version(), u, k, minK)
						return
					}
				}
				for sh := 0; sh < sm.NumShards(); sh++ {
					lo, hi := sm.Range(sh)
					for u := lo + 1; u < hi; u++ {
						if ks[u] > ks[u-1] {
							fail("snapshot seq %d: shard %d not captured atomically: k[%d]=%d > k[%d]=%d",
								snap.Seq(), sh, u, ks[u], u-1, ks[u-1])
							return
						}
					}
					if hi > lo && ks[lo]-ks[hi-1] > workers {
						fail("snapshot seq %d: shard %d spans %d absorbs across its units, max %d",
							snap.Seq(), sh, ks[lo]-ks[hi-1], workers)
						return
					}
				}
				if snap.Seq() > lastSeq {
					for u := range ks {
						if ks[u] < lastK[u] {
							fail("unit %d went backwards: %d absorbs at seq %d after %d at seq %d",
								u, ks[u], snap.Seq(), lastK[u], lastSeq)
							return
						}
					}
					lastSeq = snap.Seq()
					copy(lastK, ks)
				}
			}
		}()
	}

	mergeWG.Wait()
	stop.Store(true) // merges done; release the readers
	readWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got := pub.Version(); got != iters {
		t.Fatalf("final published version %d, want %d", got, iters)
	}
	final := pub.Current()
	for u := 0; u < units; u++ {
		k, ok := prefixOf[u][rowKey(final.Row(u))]
		if !ok || k != maxK {
			t.Fatalf("final snapshot unit %d is at prefix %d (found=%v), want %d", u, k, ok, maxK)
		}
	}
}

// rowKey is a row's exact bit pattern — the equality the no-torn-reads
// claim is made in.
func rowKey(row []float32) string {
	b := make([]byte, 4*len(row))
	for i, v := range row {
		bits := math.Float32bits(v)
		b[4*i] = byte(bits)
		b[4*i+1] = byte(bits >> 8)
		b[4*i+2] = byte(bits >> 16)
		b[4*i+3] = byte(bits >> 24)
	}
	return string(b)
}
