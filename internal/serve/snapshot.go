package serve

import (
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

// Snapshot is one immutable published model version: every synchronization
// unit's weight row, captured per shard under that shard's lock and
// assembled lock-free. Rows are shared with the publisher's live shadow
// under copy-on-write — a published row is never written again — so a
// request served from a Snapshot observes exactly one training state no
// matter how long the forward pass takes or how many versions publish
// meanwhile.
type Snapshot struct {
	version int64
	seq     int64
	rows    [][]float32
}

// Version is the training version the snapshot captures: the global
// row-version minimum at publish time. Every row in the snapshot has
// absorbed at least `version` iterations from every attached worker — the
// read-side RSP guarantee.
func (s *Snapshot) Version() int64 { return s.version }

// Seq is the publish sequence number (1 is the initial pre-training
// snapshot).
func (s *Snapshot) Seq() int64 { return s.seq }

// NumUnits returns the snapshot's row count.
func (s *Snapshot) NumUnits() int { return len(s.rows) }

// Row returns unit u's weight row. The slice is immutable — callers must
// not write it.
func (s *Snapshot) Row(u int) []float32 { return s.rows[u] }

// Materialize copies every row into params (a model with the architecture
// part was built from) — the step that turns a snapshot into a runnable
// replica for a forward pass.
func (s *Snapshot) Materialize(part *rowsync.Partition, params []*tensor.Matrix) {
	for u := range s.rows {
		copy(part.Slice(params, u), s.rows[u])
	}
}
