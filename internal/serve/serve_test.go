package serve

import (
	"testing"

	"rog/internal/engine"
	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/simnet"
	"rog/internal/tensor"
)

// harnessFor builds the shared test rig: a tiny MLP, a sharded training
// state over its row partition, and a publisher shadowing the merges.
type rig struct {
	k      *simnet.Kernel
	st     *engine.State
	part   *rowsync.Partition
	pub    *Publisher
	srv    *Server
	units  int
	inDim  int
	outDim int
}

func newRig(t *testing.T, workers, shards int, cfg Config) *rig {
	t.Helper()
	model := nn.NewClassifierMLP(4, []int{6}, 3, tensor.NewRNG(7))
	part := rowsync.NewPartition(model.Params(), rowsync.Rows)
	pol, err := engine.New("rog", engine.Params{Workers: workers, Threshold: 1 << 30, NumUnits: part.NumUnits()})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	st := engine.NewStateSharded(pol, part, workers, 1.0, shards)
	pub := NewPublisher(st, part, model.Params(), 0.05)
	r := &rig{
		k: simnet.NewKernel(), st: st, part: part, pub: pub,
		units: part.NumUnits(), inDim: 4, outDim: 3,
	}
	scratch := nn.NewClassifierMLP(4, []int{6}, 3, tensor.NewRNG(7))
	if cfg.Clock == nil {
		cfg.Clock = KernelClock{K: r.k}
	}
	r.srv = NewServer(pub, scratch, r.inDim, cfg)
	return r
}

// mergeRound merges iteration iter of every worker over every unit —
// after it the global minimum is iter.
func (r *rig) mergeRound(iter int64) {
	vals := make([]float32, 0, 8)
	for u := 0; u < r.units; u++ {
		un := r.part.Unit(u)
		vals = vals[:0]
		for i := 0; i < un.Len; i++ {
			vals = append(vals, float32(u%5)*0.01+float32(iter)*0.001)
		}
		for w := 0; w < 2; w++ {
			r.st.Merge(w, u, vals, iter)
		}
	}
}

func TestPublisherInitialSnapshot(t *testing.T) {
	r := newRig(t, 2, 2, Config{})
	snap := r.pub.Current()
	if snap == nil {
		t.Fatal("no initial snapshot")
	}
	if snap.Version() != 0 || snap.Seq() != 1 {
		t.Fatalf("initial snapshot version=%d seq=%d, want 0/1", snap.Version(), snap.Seq())
	}
	if snap.NumUnits() != r.units {
		t.Fatalf("snapshot has %d units, want %d", snap.NumUnits(), r.units)
	}
}

func TestPublisherAdvancesWithMinimum(t *testing.T) {
	r := newRig(t, 2, 2, Config{})
	// A single worker's merges do not move the minimum: no publication.
	vals := make([]float32, r.part.Unit(0).Len)
	r.st.Merge(0, 0, vals, 1)
	if got := r.pub.Version(); got != 0 {
		t.Fatalf("published version %d after one worker's merge, want 0", got)
	}
	r.mergeRound(1)
	if got := r.pub.Version(); got != 1 {
		t.Fatalf("published version %d after full round, want 1", got)
	}
	r.mergeRound(2)
	if got := r.pub.Version(); got != 2 {
		t.Fatalf("published version %d after two rounds, want 2", got)
	}
	if n := r.pub.Publishes(); n != 3 { // initial + two advances
		t.Fatalf("publishes = %d, want 3", n)
	}
}

func TestSnapshotImmutableUnderLaterMerges(t *testing.T) {
	r := newRig(t, 2, 2, Config{})
	r.mergeRound(1)
	snap := r.pub.Current()
	frozen := make([][]float32, snap.NumUnits())
	for u := range frozen {
		frozen[u] = append([]float32(nil), snap.Row(u)...)
	}
	for it := int64(2); it <= 5; it++ {
		r.mergeRound(it)
	}
	for u := range frozen {
		got := snap.Row(u)
		for i := range frozen[u] {
			if got[i] != frozen[u][i] {
				t.Fatalf("unit %d elem %d mutated after later merges: %v != %v",
					u, i, got[i], frozen[u][i])
			}
		}
	}
	if r.pub.Version() != 5 {
		t.Fatalf("live version %d, want 5", r.pub.Version())
	}
}

func TestServerBatchesWindow(t *testing.T) {
	r := newRig(t, 2, 1, Config{WindowSeconds: 0.01})
	var replies []Reply
	input := []float32{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 5; i++ {
		if err := r.srv.Submit(Request{ID: int64(i + 1), Input: input}, func(rep Reply) {
			replies = append(replies, rep)
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if len(replies) != 0 {
		t.Fatalf("%d replies before the window elapsed", len(replies))
	}
	r.k.RunUntilIdle(100)
	if len(replies) != 5 {
		t.Fatalf("got %d replies, want 5", len(replies))
	}
	st := r.srv.Stats()
	if st.Batches != 1 {
		t.Fatalf("ran %d forward passes for one window, want 1", st.Batches)
	}
	for _, rep := range replies {
		if rep.Version != 0 || len(rep.Output) != r.outDim {
			t.Fatalf("reply %+v: want version 0, %d outputs", rep, r.outDim)
		}
	}
}

func TestServerMaxBatchFlushesEarly(t *testing.T) {
	r := newRig(t, 2, 1, Config{WindowSeconds: 10, MaxBatch: 3})
	served := 0
	input := []float32{1, 2, 3, 4}
	for i := 0; i < 3; i++ {
		if err := r.srv.Submit(Request{ID: int64(i + 1), Input: input}, func(Reply) { served++ }); err != nil {
			t.Fatal(err)
		}
	}
	if served != 3 {
		t.Fatalf("maxBatch reached but only %d served", served)
	}
	// The still-armed window timer must no-op on the empty queue, and a
	// later submit must arm a fresh flush.
	r.k.RunUntilIdle(100)
	if err := r.srv.Submit(Request{ID: 9, Input: input}, func(Reply) { served++ }); err != nil {
		t.Fatal(err)
	}
	r.k.RunUntilIdle(100)
	if served != 4 {
		t.Fatalf("served %d after post-flush submit, want 4", served)
	}
}

func TestReadGateParksUntilFreshSnapshot(t *testing.T) {
	r := newRig(t, 2, 2, Config{WindowSeconds: 0})
	var got *Reply
	err := r.srv.Submit(Request{ID: 1, MinVersion: 2, Input: []float32{1, 0, 0, 1}}, func(rep Reply) {
		got = &rep
	})
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunUntilIdle(100)
	if got != nil {
		t.Fatalf("request served at version %d before its floor published", got.Version)
	}
	if r.pub.Parked() != 1 {
		t.Fatalf("parked = %d, want 1", r.pub.Parked())
	}
	r.mergeRound(1)
	r.k.RunUntilIdle(100)
	if got != nil {
		t.Fatal("request served below its staleness floor")
	}
	r.mergeRound(2)
	r.k.RunUntilIdle(100)
	if got == nil {
		t.Fatal("request still parked after its floor published")
	}
	if got.Version < 2 {
		t.Fatalf("served version %d < demanded floor 2", got.Version)
	}
	if r.pub.Parked() != 0 {
		t.Fatalf("parked = %d after serve, want 0", r.pub.Parked())
	}
}

func TestSubmitRejectsBadWidthAndClosed(t *testing.T) {
	r := newRig(t, 2, 1, Config{})
	if err := r.srv.Submit(Request{ID: 1, Input: []float32{1, 2}}, func(Reply) {}); err == nil {
		t.Fatal("submit accepted a wrong-width input")
	}
	r.srv.Close()
	if err := r.srv.Submit(Request{ID: 2, Input: []float32{1, 2, 3, 4}}, func(Reply) {}); err == nil {
		t.Fatal("submit accepted a request after Close")
	}
}

func TestCloseFlushesQueued(t *testing.T) {
	r := newRig(t, 2, 1, Config{WindowSeconds: 100})
	served := 0
	if err := r.srv.Submit(Request{ID: 1, Input: []float32{1, 2, 3, 4}}, func(Reply) { served++ }); err != nil {
		t.Fatal(err)
	}
	r.srv.Close()
	if served != 1 {
		t.Fatalf("Close served %d queued requests, want 1", served)
	}
}

// TestServedMatchesMaterializedForward pins the serving math: a reply must
// equal a forward pass through a model holding exactly the snapshot's rows.
func TestServedMatchesMaterializedForward(t *testing.T) {
	r := newRig(t, 2, 2, Config{})
	r.mergeRound(1)
	input := []float32{0.3, -0.1, 0.7, 0.2}
	var got *Reply
	if err := r.srv.Submit(Request{ID: 1, MinVersion: 1, Input: input}, func(rep Reply) {
		got = &rep
	}); err != nil {
		t.Fatal(err)
	}
	r.k.RunUntilIdle(100)
	if got == nil {
		t.Fatal("no reply")
	}
	ref := nn.NewClassifierMLP(4, []int{6}, 3, tensor.NewRNG(99))
	r.pub.Current().Materialize(r.part, ref.Params())
	want := ref.Forward(tensor.NewFrom(1, 4, append([]float32(nil), input...)))
	for i, v := range got.Output {
		if v != want.Data[i] {
			t.Fatalf("output[%d] = %v, want %v", i, v, want.Data[i])
		}
	}
}
