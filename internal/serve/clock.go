// Package serve is the distributed inference tier: it consumes versioned
// model snapshots from a training engine.State and answers inference
// requests against them, without ever serializing training.
//
// The pieces, in data-flow order:
//
//   - Publisher shadows the training stream as model weights (State.RowSink
//     feeds it every merged row's averaged contribution) and publishes
//     immutable copy-on-write Snapshots whenever the global row-version
//     minimum advances. Publication takes per-shard locks only — there is
//     no WithAllLocked barrier anywhere on the serving path.
//   - Server batches concurrent requests into one nn forward pass per
//     snapshot, and enforces the bounded-staleness read gate: a request may
//     demand `version ≥ v_min` and parks on a WaitList until a fresh-enough
//     snapshot lands — the RSP staleness bound applied to reads.
//   - The wire layer (frame.go, conn.go) exposes the same Server over
//     sockets with a fixed-width request/reply frame riding the transport
//     package's marker framing, so the lossnet channel wrapper drops whole
//     serve frames exactly as it drops training pushes.
//
// Like the engine, the package runs on injected time (roglint's wallclock
// pass enforces it): the simnet drivers pass the kernel's virtual clock,
// the socket runtime a monotonic wall-clock adapter.
package serve

import "rog/internal/simnet"

// Clock abstracts the serving tier's time source: Now in seconds since run
// start, After scheduling a callback. Implementations decide the threading
// contract — KernelClock is single-goroutine like the kernel it wraps; the
// socket runtime injects a timer-backed clock safe for concurrent use.
type Clock interface {
	Now() float64
	After(d float64, fn func())
}

// KernelClock adapts a simnet kernel as a serve Clock. It inherits the
// kernel's single-threaded discipline: only the goroutine driving the
// kernel may touch it.
type KernelClock struct {
	K *simnet.Kernel
}

// Now returns the kernel's virtual time.
func (c KernelClock) Now() float64 { return c.K.Now() }

// After schedules fn d virtual seconds from now.
func (c KernelClock) After(d float64, fn func()) { c.K.After(d, fn) }
