package serve

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The serve wire protocol: one request or reply per transport frame (the
// marker-framed payload transport.WriteFrame/Receiver carry), so the
// lossnet channel wrapper drops whole serve calls the same way it drops
// whole training pushes. Payloads are little-endian with fixed-width
// fields throughout — roglint's wireframe pass checks the structs below.
//
// Request: 'Q' | id u64 | minVersion u64 (two's-complement i64) | n u32 | n × f32
// Reply:   'S' | id u64 | version u64 (i64) | seq u64 | n u32 | n × f32

const (
	kindRequest = 'Q'
	kindReply   = 'S'
)

// MaxVectorLen bounds the feature/output vector a frame may carry; longer
// counts are rejected as corruption before any allocation.
const MaxVectorLen = 1 << 16

// RequestFrame is the decoded form of one inference request on the wire.
type RequestFrame struct {
	ID         uint64
	MinVersion int64
	Input      []float32
}

// ReplyFrame is the decoded form of one inference reply on the wire.
type ReplyFrame struct {
	ID      uint64
	Version int64
	Seq     uint64
	Output  []float32
}

// EncodeRequest serializes the frame.
func EncodeRequest(f RequestFrame) []byte {
	buf := make([]byte, 0, 1+8+8+4+4*len(f.Input))
	buf = append(buf, kindRequest)
	buf = binary.LittleEndian.AppendUint64(buf, f.ID)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.MinVersion))
	buf = appendVector(buf, f.Input)
	return buf
}

// DecodeRequest parses a request payload, rejecting truncated, oversized
// and trailing-garbage encodings.
func DecodeRequest(b []byte) (RequestFrame, error) {
	if len(b) < 1+8+8+4 {
		return RequestFrame{}, fmt.Errorf("serve: request frame truncated at %d bytes", len(b))
	}
	if b[0] != kindRequest {
		return RequestFrame{}, fmt.Errorf("serve: frame kind %#x is not a request", b[0])
	}
	f := RequestFrame{
		ID:         binary.LittleEndian.Uint64(b[1:]),
		MinVersion: int64(binary.LittleEndian.Uint64(b[9:])),
	}
	vec, err := decodeVector(b[17:])
	if err != nil {
		return RequestFrame{}, fmt.Errorf("serve: request %d: %w", f.ID, err)
	}
	f.Input = vec
	return f, nil
}

// EncodeReply serializes the frame.
func EncodeReply(f ReplyFrame) []byte {
	buf := make([]byte, 0, 1+8+8+8+4+4*len(f.Output))
	buf = append(buf, kindReply)
	buf = binary.LittleEndian.AppendUint64(buf, f.ID)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Version))
	buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
	buf = appendVector(buf, f.Output)
	return buf
}

// DecodeReply parses a reply payload with the same strictness as
// DecodeRequest.
func DecodeReply(b []byte) (ReplyFrame, error) {
	if len(b) < 1+8+8+8+4 {
		return ReplyFrame{}, fmt.Errorf("serve: reply frame truncated at %d bytes", len(b))
	}
	if b[0] != kindReply {
		return ReplyFrame{}, fmt.Errorf("serve: frame kind %#x is not a reply", b[0])
	}
	f := ReplyFrame{
		ID:      binary.LittleEndian.Uint64(b[1:]),
		Version: int64(binary.LittleEndian.Uint64(b[9:])),
		Seq:     binary.LittleEndian.Uint64(b[17:]),
	}
	vec, err := decodeVector(b[25:])
	if err != nil {
		return ReplyFrame{}, fmt.Errorf("serve: reply %d: %w", f.ID, err)
	}
	f.Output = vec
	return f, nil
}

// appendVector encodes a length-prefixed float32 vector.
func appendVector(buf []byte, v []float32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
	}
	return buf
}

// decodeVector parses a length-prefixed float32 vector occupying all of b.
func decodeVector(b []byte) ([]float32, error) {
	n := int(binary.LittleEndian.Uint32(b))
	if n > MaxVectorLen {
		return nil, fmt.Errorf("vector length %d exceeds max %d", n, MaxVectorLen)
	}
	if len(b) != 4+4*n {
		return nil, fmt.Errorf("vector of %d floats needs %d payload bytes, have %d", n, 4+4*n, len(b))
	}
	v := make([]float32, n)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4+4*i:]))
	}
	return v, nil
}
