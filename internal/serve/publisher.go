package serve

import (
	"sync"
	"sync/atomic"

	"rog/internal/engine"
	"rog/internal/obs"
	"rog/internal/rowsync"
	"rog/internal/tensor"
)

// Publisher maintains the serving tier's weight shadow and publishes
// immutable Snapshots of it. It consumes the training State's merge stream
// through the RowSink hook: every merged row's averaged contribution
// (vals · scale) is applied as one momentum-free SGD step to the shadow,
// `row -= lr · scale · vals`, under the owning publisher shard's lock.
// Whenever the global row-version minimum has advanced past the published
// version, the shadow is snapshotted copy-on-write: each shard marks its
// rows shared and hands out the slice headers; a later absorb on a shared
// row copies it first, so snapshot rows are immutable from the instant
// they are captured.
//
// The snapshot path extends the engine's machine-checked lock order:
// absorb runs under one stateShard lock and reaches pubMu, then each
// publisher shard in ascending order; nothing under pubMu or a pubShard
// lock ever reaches back into the State (Versions.Min() is lock-free).
//
//roglint:lockorder stateShard.mu < Publisher.pubMu < pubShard.mu
type Publisher struct {
	st   *engine.State
	part *rowsync.Partition
	sm   *rowsync.ShardMap
	lr   float32

	// Probe, when set, receives a SnapshotPublish event per publication.
	// Set it before training merges begin.
	Probe *obs.Probe

	pubMu  sync.Mutex // serializes publications; guards seq
	seq    int64      // guarded by pubMu
	shards []*pubShard

	cur       atomic.Pointer[Snapshot]
	publishes atomic.Int64

	// waiters holds the read-gate retries of requests demanding a version
	// not yet published; every publication wakes them. Its own lock is
	// taken with no other lock held by this package... except under a
	// stateShard lock when a publish runs inside absorb, which the engine's
	// WaitList permits (retry closures run unlocked and take only leaf
	// locks of their own).
	waiters *engine.WaitList
}

// pubShard is one independently lockable slice of the weight shadow,
// mirroring the training state's unit-range sharding so absorb contention
// matches merge contention.
type pubShard struct {
	lo, hi int

	mu     sync.Mutex
	rows   [][]float32 // guarded by mu; rows[i] is unit lo+i's live shadow row
	shared []bool      // guarded by mu; true while rows[i] is referenced by a snapshot
}

// NewPublisher builds the weight shadow from the pretrained parameters in
// init (the architecture part was built from), hooks itself into st's
// merge stream, and publishes the initial snapshot at version 0. lr is the
// SGD step applied to each absorbed averaged row.
//
// Call before training merges begin: NewPublisher sets st.RowSink.
func NewPublisher(st *engine.State, part *rowsync.Partition, init []*tensor.Matrix, lr float64) *Publisher {
	sm := st.ShardMap()
	p := &Publisher{
		st:      st,
		part:    part,
		sm:      sm,
		lr:      float32(lr),
		waiters: engine.NewWaitList(),
	}
	for i := 0; i < sm.NumShards(); i++ {
		lo, hi := sm.Range(i)
		sh := &pubShard{lo: lo, hi: hi}
		sh.rows = make([][]float32, hi-lo)
		sh.shared = make([]bool, hi-lo)
		for u := lo; u < hi; u++ {
			sh.rows[u-lo] = append([]float32(nil), part.Slice(init, u)...)
		}
		p.shards = append(p.shards, sh)
	}
	st.RowSink = p.absorb
	p.publish(0)
	return p
}

// Current returns the latest published snapshot (never nil after
// NewPublisher).
func (p *Publisher) Current() *Snapshot { return p.cur.Load() }

// Version returns the latest published training version.
func (p *Publisher) Version() int64 { return p.cur.Load().Version() }

// Publishes returns how many snapshots have been published (including the
// initial version-0 one).
func (p *Publisher) Publishes() int64 { return p.publishes.Load() }

// Parked reports how many read-gate retries are currently waiting for a
// fresher snapshot.
func (p *Publisher) Parked() int { return p.waiters.Len() }

// absorb is the RowSink: it folds one merged row's averaged contribution
// into the shadow and publishes when the global minimum has moved past the
// published version. It runs under the owning stateShard's lock.
func (p *Publisher) absorb(unit int, vals []float32, scale float32, _ int64) {
	sh := p.shards[p.sm.ShardOf(unit)]
	sh.mu.Lock()
	i := unit - sh.lo
	row := sh.rows[i]
	if sh.shared[i] {
		// Copy-on-write: the row is captured in a snapshot; writing it in
		// place would tear an in-flight request's view.
		row = append(make([]float32, 0, len(row)), row...)
		sh.rows[i] = row
		sh.shared[i] = false
	}
	step := p.lr * scale
	for j, v := range vals {
		row[j] -= step * v
	}
	sh.mu.Unlock()
	if min := p.st.Versions.Min(); min > p.Version() {
		p.publish(min)
	}
}

// publish captures the shadow as an immutable snapshot at version min and
// hot-swaps it in. Each shard is captured under its own lock — a shard's
// rows are exactly one prefix of that shard's applied-update sequence —
// and the assembly across shards is lock-free, so a publication never
// stops a merge landing on another shard.
func (p *Publisher) publish(min int64) {
	p.pubMu.Lock()
	if cur := p.cur.Load(); cur != nil && cur.version >= min {
		// A concurrent absorb already published this far.
		p.pubMu.Unlock()
		return
	}
	rows := make([][]float32, p.part.NumUnits())
	for _, sh := range p.shards {
		sh.mu.Lock()
		for i := range sh.rows {
			sh.shared[i] = true
			rows[sh.lo+i] = sh.rows[i]
		}
		sh.mu.Unlock()
	}
	p.seq++
	seq := p.seq
	p.cur.Store(&Snapshot{version: min, seq: seq, rows: rows})
	p.pubMu.Unlock()
	p.publishes.Add(1)
	p.Probe.SnapshotPublish(min, seq, len(rows))
	// In-flight requests keep the snapshot they were batched against; the
	// swap above only redirects future reads. Wake the read gate last so
	// resumed requests see the fresh snapshot.
	p.waiters.Wake()
}
