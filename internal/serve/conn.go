package serve

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"rog/internal/transport"
)

// ServeConn answers serve-protocol requests from one connection until the
// stream ends, decoding each marker-framed request and writing the reply
// when its batch flushes. Replies from concurrent batches interleave in
// completion order; the request id pairs them. A clean peer close returns
// nil; the first read, decode or reply-write error otherwise.
//
// The caller owns the connection and closes it after ServeConn returns.
func (s *Server) ServeConn(conn net.Conn) error {
	rc := transport.NewReceiver(conn)
	var wmu sync.Mutex // serializes reply writes; guards werr
	var werr error
	for {
		wmu.Lock()
		failed := werr
		wmu.Unlock()
		if failed != nil {
			return failed
		}
		payload, err := rc.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			return err
		}
		err = s.Submit(Request{
			ID:         int64(req.ID),
			MinVersion: req.MinVersion,
			Input:      req.Input,
		}, func(rep Reply) {
			buf := EncodeReply(ReplyFrame{
				ID:      uint64(rep.ID),
				Version: rep.Version,
				Seq:     uint64(rep.Seq),
				Output:  rep.Output,
			})
			wmu.Lock()
			if werr == nil {
				// First write error sticks; the read loop surfaces it.
				werr = transport.WriteFrame(conn, buf)
			}
			wmu.Unlock()
		})
		if err != nil {
			return err
		}
	}
}

// Serve accepts connections from l and runs ServeConn on each until Accept
// fails (closing the listener is the shutdown signal).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.serveAndClose(conn)
	}
}

// serveAndClose runs one connection to completion and closes it.
func (s *Server) serveAndClose(conn net.Conn) {
	_ = s.ServeConn(conn) // per-conn errors end that client only
	_ = conn.Close()
}

// Client is a synchronous serve-protocol client over one connection. Do
// calls are serialized; for concurrent load, open one Client per
// goroutine (connections are cheap — the server batches across them).
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	rc     *transport.Receiver
	nextID uint64
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, rc: transport.NewReceiver(conn)}
}

// Do sends one request demanding version ≥ minVersion and blocks for its
// reply. Replies for other ids (stale answers outliving a lossy exchange)
// are skipped. Deadlines and retries are the caller's: set them on the
// underlying connection when the channel may drop frames.
func (c *Client) Do(input []float32, minVersion int64) (Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	buf := EncodeRequest(RequestFrame{ID: id, MinVersion: minVersion, Input: input})
	if err := transport.WriteFrame(c.conn, buf); err != nil {
		return Reply{}, fmt.Errorf("serve: client send: %w", err)
	}
	for {
		payload, err := c.rc.Recv()
		if err != nil {
			return Reply{}, fmt.Errorf("serve: client recv: %w", err)
		}
		rep, err := DecodeReply(payload)
		if err != nil {
			return Reply{}, err
		}
		if rep.ID != id {
			continue
		}
		return Reply{
			ID:      int64(rep.ID),
			Version: rep.Version,
			Seq:     int64(rep.Seq),
			Output:  rep.Output,
		}, nil
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }
