package serve

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rog/internal/lossnet"
	"rog/internal/transport"
)

// wallClock is the test-only real-time clock: tests may use time.* (the
// lint loader skips _test.go), and the socket paths genuinely run on
// goroutine time rather than a simnet kernel.
type wallClock struct{ start time.Time }

func newWallClock() wallClock { return wallClock{start: time.Now()} }

func (w wallClock) Now() float64 { return time.Since(w.start).Seconds() }

func (w wallClock) After(d float64, fn func()) {
	time.AfterFunc(time.Duration(d*float64(time.Second)), fn)
}

// immediateServer serves each request the moment it arrives: MaxBatch 1
// flushes synchronously inside Submit, so no timer is involved.
func immediateServer(t *testing.T) *Server {
	t.Helper()
	r := newRig(t, 2, 2, Config{MaxBatch: 1, Clock: newWallClock()})
	return r.srv
}

func TestServeConnRoundTrip(t *testing.T) {
	srv := immediateServer(t)
	cs, ss := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(ss) }()

	cl := NewClient(cs)
	for i := 0; i < 3; i++ {
		rep, err := cl.Do([]float32{0.1, 0.2, 0.3, float32(i)}, 0)
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		if rep.ID != int64(i+1) {
			t.Fatalf("reply id %d, want %d", rep.ID, i+1)
		}
		if len(rep.Output) != 3 {
			t.Fatalf("reply carried %d outputs, want 3", len(rep.Output))
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
}

func TestServeListener(t *testing.T) {
	srv := immediateServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = l.Close() }()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			cl := NewClient(conn)
			defer func() { _ = cl.Close() }()
			for i := 0; i < 5; i++ {
				if _, err := cl.Do([]float32{1, 2, 3, 4}, 0); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Served != clients*5 {
		t.Fatalf("served %d, want %d", st.Served, clients*5)
	}
}

func TestServeConnRejectsMalformedRequest(t *testing.T) {
	srv := immediateServer(t)
	cs, ss := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(ss) }()
	go func() {
		// A full-size frame that is not a request at all.
		bad := make([]byte, 21)
		bad[0] = 0xEE
		_ = transport.WriteFrame(cs, bad)
	}()
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "not a request") {
		t.Fatalf("ServeConn = %v, want a decode error", err)
	}
	_ = cs.Close()
}

// TestClientRetriesThroughLoss runs the client over a frame-dropping
// channel: a dropped request means no reply ever comes, the read deadline
// fires, and a retry on a fresh exchange eventually lands. This is the
// serve-tier analogue of training's loss-tolerant push path — whole frames
// vanish, the stream stays parseable.
func TestClientRetriesThroughLoss(t *testing.T) {
	srv := immediateServer(t)
	// TCP rather than net.Pipe: the kernel socket buffer absorbs replies
	// whose request the client already gave up on, so a late reply can
	// never wedge the server's write against the client's retry write.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = l.Close() }()
	cs, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	// Drop half the client's request frames, deterministically.
	lossy := lossnet.WrapConn(cs, lossnet.NewBernoulli(0.5, 11), func(b []byte) bool { return true })
	cl := NewClient(lossy)
	got := 0
	for i := 0; i < 6; i++ {
		var rep Reply
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			_ = lossy.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			rep, err = cl.Do([]float32{1, 0, 0, 1}, 0)
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("request %d never survived the channel: %v", i, err)
		}
		if len(rep.Output) != 3 {
			t.Fatalf("reply carried %d outputs", len(rep.Output))
		}
		got++
	}
	if drops, _ := lossy.Dropped(); drops == 0 {
		t.Fatal("loss model dropped nothing; the test exercised a clean channel")
	}
	if got != 6 {
		t.Fatalf("completed %d exchanges, want 6", got)
	}
	_ = cl.Close()
}
