package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rog/internal/nn"
	"rog/internal/obs"
	"rog/internal/tensor"
)

// Request is one inference call: a feature vector and the staleness floor
// it demands. A request with MinVersion v is only ever answered from a
// snapshot whose version is ≥ v — the bounded-staleness read guarantee.
type Request struct {
	ID         int64
	MinVersion int64
	Input      []float32
}

// Reply is one answered request: the model output and the snapshot
// (version, publish sequence) that produced it. Every request in one batch
// carries the same version — a batch never mixes snapshots.
type Reply struct {
	ID      int64
	Version int64
	Seq     int64
	Output  []float32
}

// Config parameterizes a Server.
type Config struct {
	// WindowSeconds is the batching window: the first request entering an
	// empty queue arms a timer this far out, and everything queued when it
	// fires is served in one forward pass. 0 serves each arrival instantly
	// (batching only what raced in together).
	WindowSeconds float64
	// MaxBatch flushes early when the queue reaches this depth (0 = no
	// cap; the window alone decides).
	MaxBatch int
	// Clock supplies time; required.
	Clock Clock
	// Probe, when set, traces RequestEnqueue/RequestServe and the
	// ReadStall pair per gated request.
	Probe *obs.Probe
}

// Server answers inference requests from the Publisher's snapshots. It
// coalesces concurrent calls into one forward pass per snapshot (the
// batcher), and parks requests whose staleness floor outruns the published
// version on the publisher's WaitList until a fresh-enough snapshot lands.
//
// Submit is safe for concurrent use when the injected Clock is; the
// scratch replica behind the forward pass is serialized by fwdMu.
type Server struct {
	pub    *Publisher
	model  *nn.Sequential // scratch replica; guarded by fwdMu
	inDim  int
	window float64
	maxB   int
	clock  Clock
	probe  *obs.Probe

	qmu       sync.Mutex
	queue     []pendingReq // guarded by qmu
	scheduled bool         // guarded by qmu; a flush timer is armed
	closed    bool         // guarded by qmu

	fwdMu   sync.Mutex
	lastSeq int64 // guarded by fwdMu; snapshot seq materialized in model

	parkKey atomic.Int64 // read-gate park keys (never reused)
	served  atomic.Int64
	batches atomic.Int64
}

// pendingReq is one queued request with its completion callback and
// enqueue time (for the latency the RequestServe event carries).
type pendingReq struct {
	req  Request
	enq  float64
	done func(Reply)
}

// NewServer builds a server over pub. model is a scratch replica of the
// served architecture — the server materializes snapshots into it, so the
// caller must not use it elsewhere. inDim is the expected feature width;
// Submit rejects inputs of any other length before they can reach the
// forward pass.
func NewServer(pub *Publisher, model *nn.Sequential, inDim int, cfg Config) *Server {
	return &Server{
		pub:    pub,
		model:  model,
		inDim:  inDim,
		window: cfg.WindowSeconds,
		maxB:   cfg.MaxBatch,
		clock:  cfg.Clock,
		probe:  cfg.Probe,
	}
}

// Publisher returns the snapshot source the server reads from.
func (s *Server) Publisher() *Publisher { return s.pub }

// Submit enqueues one request; done runs with the reply once it has been
// served (possibly before Submit returns, when the request fills a batch).
// A request demanding a version beyond the published snapshot parks on the
// read gate and is enqueued by the publication that satisfies it.
func (s *Server) Submit(req Request, done func(Reply)) error {
	if len(req.Input) != s.inDim {
		return fmt.Errorf("serve: request %d: input width %d, model expects %d",
			req.ID, len(req.Input), s.inDim)
	}
	s.qmu.Lock()
	closed := s.closed
	s.qmu.Unlock()
	if closed {
		return fmt.Errorf("serve: request %d: server closed", req.ID)
	}
	now := s.clock.Now()
	cur := s.pub.Current()
	s.probe.RequestEnqueue(req.ID, req.MinVersion, cur.Version())
	pr := pendingReq{req: req, enq: now, done: done}
	if cur.Version() >= req.MinVersion {
		s.enqueue(pr)
		return nil
	}
	s.probe.ReadStallBegin(req.ID, req.MinVersion, cur.Version())
	key := int(s.parkKey.Add(1))
	s.pub.waiters.Park(key, now, func() bool {
		snap := s.pub.Current()
		if snap.Version() < req.MinVersion {
			return false
		}
		s.probe.ReadStallEnd(req.ID, snap.Version(), s.clock.Now()-pr.enq)
		s.enqueue(pr)
		return true
	})
	// Close the check-then-park window: a publication that raced between
	// the version check and the Park would have found nothing to wake, so
	// re-evaluate immediately — the lost-wakeup-free pattern the engine's
	// staleness gates use.
	s.pub.waiters.TryResume(key, now, nil)
	return nil
}

// enqueue adds one admitted request to the batch queue and arranges the
// flush that will serve it.
func (s *Server) enqueue(pr pendingReq) {
	s.qmu.Lock()
	s.queue = append(s.queue, pr)
	depth := len(s.queue)
	arm := !s.scheduled
	if arm {
		s.scheduled = true
	}
	s.qmu.Unlock()
	if s.maxB > 0 && depth >= s.maxB {
		// Early flush clears `scheduled`; an already-armed timer fires on
		// an empty queue and no-ops.
		s.flush()
		return
	}
	if arm {
		s.clock.After(s.window, s.flush)
	}
}

// flush serves everything queued in one forward pass against the current
// snapshot. Every request in the batch is answered from that one snapshot
// — the atomic hot-swap only redirects requests enqueued later.
func (s *Server) flush() {
	s.qmu.Lock()
	batch := s.queue
	s.queue = nil
	s.scheduled = false
	s.qmu.Unlock()
	if len(batch) == 0 {
		return
	}
	snap := s.pub.Current()
	s.fwdMu.Lock()
	if s.lastSeq != snap.Seq() {
		snap.Materialize(s.pub.part, s.model.Params())
		s.lastSeq = snap.Seq()
	}
	x := tensor.New(len(batch), s.inDim)
	for i, pr := range batch {
		copy(x.Row(i), pr.req.Input)
	}
	out := s.model.Forward(x)
	s.fwdMu.Unlock()
	s.batches.Add(1)
	now := s.clock.Now()
	for i, pr := range batch {
		s.served.Add(1)
		s.probe.RequestServe(pr.req.ID, snap.Version(), len(batch), now-pr.enq)
		pr.done(Reply{
			ID:      pr.req.ID,
			Version: snap.Version(),
			Seq:     snap.Seq(),
			Output:  append([]float32(nil), out.Row(i)...),
		})
	}
}

// Close rejects future submits and serves whatever is already queued.
// Requests still parked on the read gate stay parked — their ReadStall
// intervals are legitimately left open, like a training run halting
// mid-stall.
func (s *Server) Close() {
	s.qmu.Lock()
	s.closed = true
	s.qmu.Unlock()
	s.flush()
}

// Stats is a point-in-time server counter snapshot.
type Stats struct {
	Served    int64 // requests answered
	Batches   int64 // forward passes run
	Publishes int64 // snapshots published (including the initial one)
	Parked    int   // requests currently waiting on the read gate
}

// Stats returns the current counters.
func (s *Server) Stats() Stats {
	return Stats{
		Served:    s.served.Load(),
		Batches:   s.batches.Load(),
		Publishes: s.pub.Publishes(),
		Parked:    s.pub.Parked(),
	}
}
