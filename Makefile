GO ?= go

.PHONY: build fmt vet lint test race verify bench bench-json

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint:
	sh scripts/lint.sh

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/livenet/... ./internal/engine/... ./internal/rowsync/... ./internal/core/... ./internal/transport/... ./internal/lossnet/...

verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

bench-json:
	$(GO) run ./cmd/rogbench -exp fig1 -json BENCH_fig1.json
	$(GO) run ./cmd/rogbench -exp churn -json BENCH_churn.json
