GO ?= go

.PHONY: build test race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/livenet/... ./internal/rowsync/...

verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
