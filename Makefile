GO ?= go

.PHONY: build fmt vet lint lint-json test race verify bench bench-json bench-save bench-drift recover-smoke

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint:
	sh scripts/lint.sh

lint-json:
	$(GO) run ./cmd/roglint -json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/livenet/... ./internal/engine/... ./internal/rowsync/... ./internal/core/... ./internal/transport/... ./internal/lossnet/... ./internal/durable/... ./internal/obs/... ./internal/serve/...

recover-smoke:
	tmp=$$(mktemp -d); \
	$(GO) run ./cmd/rogtrain -strategy rog -threshold 4 -minutes 2 \
		-checkpoint-dir "$$tmp/ckpt" -checkpoint-every 20 \
		-faults "servercrash@45+10" && \
	$(GO) run ./cmd/rogtrain -strategy rog -threshold 4 -minutes 3 \
		-checkpoint-dir "$$tmp/ckpt" -resume; \
	rc=$$?; rm -rf "$$tmp"; exit $$rc

verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

bench-json:
	$(GO) run ./cmd/rogbench -exp fig1 -json BENCH_fig1.json
	$(GO) run ./cmd/rogbench -exp churn -json BENCH_churn.json

# bench-save snapshots one experiment's -json report into the first free
# BENCH_<n>.json; bench-drift (also run by scripts/verify.sh, non-fatally)
# reruns the latest snapshot's experiment and reports what moved.
BENCH_EXP ?= fleet
bench-save:
	n=1; while [ -e "BENCH_$$n.json" ]; do n=$$((n+1)); done; \
	$(GO) run ./cmd/rogbench -exp $(BENCH_EXP) -json "BENCH_$$n.json"

bench-drift:
	latest=$$(ls BENCH_[0-9]*.json 2>/dev/null | sort -t_ -k2 -n | tail -1); \
	if [ -z "$$latest" ]; then echo "bench-drift: no BENCH_<n>.json snapshot (run make bench-save)"; \
	else $(GO) run ./cmd/rogbench -drift "$$latest"; fi
