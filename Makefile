GO ?= go

.PHONY: build fmt vet lint test race verify bench bench-json recover-smoke

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint:
	sh scripts/lint.sh

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/livenet/... ./internal/engine/... ./internal/rowsync/... ./internal/core/... ./internal/transport/... ./internal/lossnet/... ./internal/durable/...

recover-smoke:
	tmp=$$(mktemp -d); \
	$(GO) run ./cmd/rogtrain -strategy rog -threshold 4 -minutes 2 \
		-checkpoint-dir "$$tmp/ckpt" -checkpoint-every 20 \
		-faults "servercrash@45+10" && \
	$(GO) run ./cmd/rogtrain -strategy rog -threshold 4 -minutes 3 \
		-checkpoint-dir "$$tmp/ckpt" -resume; \
	rc=$$?; rm -rf "$$tmp"; exit $$rc

verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

bench-json:
	$(GO) run ./cmd/rogbench -exp fig1 -json BENCH_fig1.json
	$(GO) run ./cmd/rogbench -exp churn -json BENCH_churn.json
