GO ?= go

.PHONY: build fmt vet lint test race verify bench

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint:
	sh scripts/lint.sh

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/livenet/... ./internal/engine/... ./internal/rowsync/... ./internal/core/... ./internal/transport/...

verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
