package rog

import (
	"strings"
	"testing"
)

// TestPublicAPIRun exercises the full public surface the way a downstream
// user would: build a workload, run two strategies, compare.
func TestPublicAPIRun(t *testing.T) {
	opts := DefaultCRUDAOptions()
	opts.PretrainIters = 100
	wl := NewCRUDAWorkload(opts)
	cfg := Config{
		Strategy:          ROG,
		Workers:           4,
		Threshold:         4,
		Env:               Outdoor,
		Seed:              3,
		MaxVirtualSeconds: 90,
		CheckpointEvery:   5,
	}
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.TotalJoules <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Label() != "ROG-4" {
		t.Fatalf("label %q", res.Label())
	}
}

func TestPublicAPICRIMP(t *testing.T) {
	opts := DefaultCRIMPOptions()
	opts.ObsPerBot = 30
	opts.TestObs = 3
	wl := NewCRIMPWorkload(opts)
	cfg := Config{
		Strategy:          BSP,
		Workers:           4,
		Env:               Indoor,
		Seed:              5,
		ComputeSeconds:    1.4,
		PaperModelBytes:   0.76e6,
		MaxVirtualSeconds: 60,
		CheckpointEvery:   5,
	}
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("not-a-figure", QuickScale); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 14 {
		t.Fatalf("registry too small: %d", len(exps))
	}
	out, err := RunExperiment("table1", QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.32") {
		t.Fatalf("table1 missing the paper's MTA(4)=0.32:\n%s", out)
	}
}

func TestGenerateTrace(t *testing.T) {
	tr := GenerateTrace(Outdoor, 30, 1)
	if tr.Duration() != 30 || tr.Mean() <= 0 {
		t.Fatalf("bad trace: dur=%v mean=%v", tr.Duration(), tr.Mean())
	}
}

func TestRunEndToEndPublic(t *testing.T) {
	results, err := RunEndToEnd(EndToEndOptions{
		Paradigm: "cruda",
		Env:      Outdoor,
		Scale: ExperimentScale{
			Name: "t", VirtualSeconds: 60, CheckpointEvery: 5, PretrainIters: 80,
		},
		Systems: []SystemSpec{{Strategy: BSP}, {Strategy: ROG, Threshold: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	table := CompositionTable(results)
	if !strings.Contains(table, "BSP") || !strings.Contains(table, "ROG-4") {
		t.Fatalf("composition table:\n%s", table)
	}
	if SeriesByTime(results, 20) == "" {
		t.Fatal("empty series")
	}
}
