package rog_test

import (
	"fmt"

	"rog"
)

// Example shows the complete integration surface: build a workload, pick a
// strategy, run, and read the result. Everything is deterministic given
// the seed.
func Example() {
	opts := rog.DefaultCRUDAOptions()
	opts.PretrainIters = 60 // keep the example fast
	workload := rog.NewCRUDAWorkload(opts)

	res, err := rog.Run(rog.Config{
		Strategy:          rog.ROG,
		Workers:           4,
		Threshold:         4,
		Env:               rog.Outdoor,
		Seed:              7,
		MaxVirtualSeconds: 60,
		CheckpointEvery:   5,
	}, workload)
	if err != nil {
		panic(err)
	}

	fmt.Println("label:", res.Label())
	fmt.Println("made progress:", res.Iterations > 0)
	fmt.Println("burned energy:", res.TotalJoules > 0)
	// Output:
	// label: ROG-4
	// made progress: true
	// burned energy: true
}

// ExampleGenerateTrace synthesizes a calibrated outdoor bandwidth trace
// and reads its Fig. 3 statistics.
func ExampleGenerateTrace() {
	tr := rog.GenerateTrace(rog.Outdoor, 300, 42)
	fmt.Println("five minutes of samples:", len(tr.Samples) == 3000)
	fmt.Println("unstable:", tr.MeanFluctuationInterval(0.2) < 1.0)
	// Output:
	// five minutes of samples: true
	// unstable: true
}
