// Package rog is a Go reproduction of "ROG: A High Performance and Robust
// Distributed Training System for Robotic IoT" (MICRO 2022).
//
// ROG performs data-parallel training across a team of robots connected by
// an unstable wireless network. Instead of synchronizing whole models, it
// breaks every layer's parameters into rows and schedules the transmission
// of individual rows against the fluctuating bandwidth:
//
//   - RSP (Row Stale Parallel) bounds each row's staleness across workers
//     and across rows within a worker, preserving SSP's convergence
//     guarantee at row granularity.
//   - ATP (Adaptive Transmission Protocol) ranks rows by gradient magnitude
//     and staleness, and speculatively transmits them under a shared
//     MTA-time budget so that all devices spend roughly equal time
//     transmitting, whatever their instantaneous bandwidth.
//
// This package is the public face of the repository: strategy drivers
// (ROG plus the BSP/SSP/FLOWN baselines), the two workloads the paper
// evaluates (CRUDA domain adaptation and CRIMP implicit mapping), the
// synthetic wireless substrate, and the full experiment registry that
// regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
// Implement Workload on your model and data (tens of lines — see
// examples/quickstart), then run a strategy over a simulated robot team:
//
//	cfg := rog.Config{
//		Strategy:          rog.ROG,
//		Workers:           4,
//		Threshold:         4,
//		Env:               rog.Outdoor,
//		MaxVirtualSeconds: 600,
//	}
//	res, err := rog.Run(cfg, workload)
//
// Training math is real (from-scratch tensors, backprop and SGD live in
// internal packages); compute and transmission consume virtual time on a
// deterministic discrete-event kernel, so a "60-minute" experiment
// finishes in seconds and is reproducible bit-for-bit.
package rog

import (
	"io"

	"rog/internal/core"
	"rog/internal/durable"
	"rog/internal/lossnet"
	"rog/internal/metrics"
	"rog/internal/obs"
	"rog/internal/simnet"
	"rog/internal/trace"
)

// Strategy selects the synchronization algorithm.
type Strategy = core.Strategy

// Synchronization strategies.
const (
	// BSP is bulk synchronous parallel: a full barrier every iteration.
	BSP = core.BSP
	// SSP is stale synchronous parallel with a fixed staleness threshold.
	SSP = core.SSP
	// FLOWN is the dynamic-threshold scheduling baseline.
	FLOWN = core.FLOWN
	// ROG is the paper's row-granulated system (RSP + ATP).
	ROG = core.ROG
	// DSSP is dynamic SSP (after Zhao et al.): SSP whose staleness
	// threshold adapts at run time inside [2, Threshold].
	DSSP = core.DSSP
)

// Env selects the wireless environment profile.
type Env = trace.Env

// Environment profiles calibrated to the paper's Fig. 3 measurements.
const (
	// Indoor is the laboratory profile (moderate instability).
	Indoor = trace.Indoor
	// Outdoor is the campus-garden profile (severe instability).
	Outdoor = trace.Outdoor
)

// Config parameterizes one training run. See core.Config for field
// documentation.
type Config = core.Config

// Result reports a finished run: quality checkpoints, per-iteration time
// composition, energy, and optional micro-event samples.
type Result = core.Result

// Workload abstracts a training task: per-worker model replicas, local
// gradient computation, and a quality metric.
type Workload = core.Workload

// MicroSample is one Fig. 8 micro-event data point.
type MicroSample = core.MicroSample

// Run executes one experiment to completion.
func Run(cfg Config, wl Workload) (*Result, error) { return core.Run(cfg, wl) }

// FaultKind discriminates injected failures: worker crashes (membership
// churn) and link blackouts or flaps (connectivity loss without churn).
type FaultKind = simnet.FaultKind

// Fault kinds.
const (
	// FaultCrash removes a worker from the membership; with a duration it
	// rejoins (and resyncs) after the outage.
	FaultCrash = simnet.FaultCrash
	// FaultBlackout drops a worker's link capacity to zero for a duration.
	FaultBlackout = simnet.FaultBlackout
	// FaultFlap alternates a worker's link down/up with a given period.
	FaultFlap = simnet.FaultFlap
	// FaultServerCrash kills the parameter server (not a worker: the spec
	// takes no worker id, "servercrash@120+30"); the run must have a
	// checkpoint store (Config.Durable) to recover from.
	FaultServerCrash = simnet.FaultServerCrash
)

// FaultEvent is one scheduled failure in virtual time.
type FaultEvent = simnet.FaultEvent

// FaultSchedule scripts failures into a run via Config.Faults. Runs with
// identical schedules replay deterministically.
type FaultSchedule = simnet.FaultSchedule

// ParseFaultSchedule parses a comma-separated fault script, e.g.
// "crash:1@120+60,blackout:0@60+30,flap:3@100+120/10" — kind:worker@start,
// +duration for recovery, /period for flap cadence (seconds, virtual time).
func ParseFaultSchedule(spec string) (FaultSchedule, error) {
	return simnet.ParseFaultSchedule(spec)
}

// ChurnStats counts membership-churn events observed during a run; see
// Result.Churn.
type ChurnStats = metrics.ChurnStats

// RecoveryStats reports what parameter-server crash recovery cost during a
// run; see Result.Recovery.
type RecoveryStats = metrics.RecoveryStats

// CheckpointStore is the parameter server's durable checkpoint store: a
// write-ahead log of merge records plus atomic model snapshots, wired into
// a run via Config.Durable.
type CheckpointStore = durable.Store

// OpenCheckpoints opens (or creates) a checkpoint store in dir on the real
// filesystem.
func OpenCheckpoints(dir string) (*CheckpointStore, error) {
	return durable.Open(durable.OSFS{}, dir)
}

// LossSpec names a packet-loss channel model injected via Config.Loss:
// i.i.d. Bernoulli ("iid:0.05"), bursty Gilbert–Elliott ("ge:0.05" or
// "ge:0.05/16" with a mean burst length), or the loss-rate column of a
// recorded trace ("trace").
type LossSpec = lossnet.Spec

// ParseLossSpec parses the "kind:rate[/burst]" loss-model grammar.
func ParseLossSpec(spec string) (LossSpec, error) { return lossnet.ParseSpec(spec) }

// LossReliability selects how rows lost on the channel are recovered; see
// Config.Reliability.
type LossReliability = lossnet.Reliability

// Reliability modes.
const (
	// SelectiveReliability retransmits only a push plan's Must prefix (the
	// MTA floor plus RSP-forced rows); lost best-effort rows fold their
	// gradients back into the local accumulator and ride the next push.
	SelectiveReliability = lossnet.Selective
	// AllReliable retransmits every lost row until delivered.
	AllReliable = lossnet.AllReliable
)

// ParseLossReliability parses "selective" or "all".
func ParseLossReliability(s string) (LossReliability, error) {
	return lossnet.ParseReliability(s)
}

// LossStats counts loss-channel outcomes of a run; see Result.Loss.
type LossStats = metrics.LossStats

// BandwidthTrace is a piecewise-constant bandwidth series in Mbps.
type BandwidthTrace = trace.Trace

// GenerateTrace synthesizes a bandwidth trace with the calibrated profile
// of env, for the given duration in seconds.
func GenerateTrace(env Env, duration float64, seed uint64) *BandwidthTrace {
	return trace.GenerateEnv(env, duration, seed)
}

// Tracer receives the structured event stream of a run; set Config.Trace
// to enable tracing (nil keeps the hot paths allocation-free).
type Tracer = obs.Tracer

// TraceEvent is one structured trace event.
type TraceEvent = obs.Event

// Registry accumulates runtime counters, gauges and histograms; set
// Config.Metrics to enable collection.
type Registry = obs.Registry

// TraceSummary is the aggregation of a JSONL trace (what rogtrace prints).
type TraceSummary = obs.Summary

// NewJSONLTracer writes one JSON object per event to w; Close flushes.
func NewJSONLTracer(w io.Writer) *obs.JSONLTracer { return obs.NewJSONLTracer(w) }

// NewChromeTracer writes a Chrome trace_event file (chrome://tracing,
// Perfetto) to w; Close finalizes the JSON document.
func NewChromeTracer(w io.Writer) *obs.ChromeTracer { return obs.NewChromeTracer(w) }

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// AggregateTrace folds a JSONL event stream into per-iteration, per-unit
// and per-cause summaries.
func AggregateTrace(r io.Reader) (*TraceSummary, error) { return obs.Aggregate(r) }

// CritReport is the critical-path decomposition of a traced run: each
// worker's wall time split into compute / comm / gate-stall / merge
// segments, plus the top blocking (worker, unit) pairs and the stall
// duration distribution. Produced by CritPathFromTrace or rog.CritPath.
type CritReport = obs.CritReport

// WorkerPath is one worker's critical-path row in a CritReport.
type WorkerPath = obs.WorkerPath

// BlockerRow is one blocking (worker, unit) pair in a CritReport, ranked
// by the stall seconds its merges released.
type BlockerRow = obs.BlockerRow

// CritPath streams trace events into a critical-path decomposition; feed
// it as a Tracer (or tee it next to a JSONL sink) and call Report.
type CritPath = obs.CritPath

// NewCritPath creates an empty streaming critical-path analyzer.
func NewCritPath() *CritPath { return obs.NewCritPath() }

// CritPathFromTrace decomposes a recorded JSONL trace into per-worker
// critical-path segments (what `rogtrace critpath` prints).
func CritPathFromTrace(r io.Reader) (*CritReport, error) { return obs.CritPathFromReader(r) }

// FlightRecorder is the bounded lock-free crash flight recorder: it
// retains the last N events per worker and dumps the tail on crash-class
// triggers. Set Config.Flight / ServerConfig.Flight to enable it.
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder retains perSource events for each of sources workers
// (plus a shared overflow ring); Dump writes JSONL to sink.
func NewFlightRecorder(sources, perSource int, sink io.Writer) *FlightRecorder {
	return obs.NewFlightRecorder(sources, perSource, sink)
}

// TeeTracers fans one event stream out to several tracers (nil entries
// are dropped; nil is returned when none remain).
func TeeTracers(tracers ...Tracer) Tracer { return obs.Tee(tracers...) }
