// Command rogbench reruns the paper's experiments and prints the tables
// and series each figure plots.
//
// Usage:
//
//	rogbench -list
//	rogbench -exp fig1            # quick scale (~1/9 duration)
//	rogbench -exp fig7 -full      # paper scale (60 virtual minutes)
//	rogbench -all                 # every experiment, quick scale
//	rogbench -exp fig1 -json BENCH_fig1.json   # machine-readable report
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rog"
	"rog/internal/harness"
	"rog/internal/trace"
)

func main() {
	jsonIDs := strings.Join(harness.JSONExperimentIDs(), ", ")
	var (
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		full  = flag.Bool("full", false, "run at paper scale (60 virtual minutes per system)")
		list  = flag.Bool("list", false, "list available experiments")
		seeds = flag.Int("seeds", 1, "replicate fig1/fig6/fig7 across N seeds and report mean±std")
		jsonP = flag.String("json", "", "write a machine-readable report of -exp ("+jsonIDs+") to this file")
		drift = flag.String("drift", "", "rerun the experiment recorded in this BENCH_*.json snapshot and report drift against it (never fails)")
	)
	flag.Parse()

	// Refuse stray positional arguments (a mistyped flag would otherwise
	// run the default experiment set with its value silently dropped).
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rogbench: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "rogbench: -seeds must be >= 1, got %d\n", *seeds)
		os.Exit(2)
	}

	scale := rog.QuickScale
	if *full {
		scale = rog.FullScale
	}

	switch {
	case *list:
		for _, e := range rog.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
	case *drift != "":
		runDrift(*drift)
	case *jsonP != "":
		if *exp == "" {
			fmt.Fprintf(os.Stderr, "rogbench: -json needs -exp (%s)\n", jsonIDs)
			os.Exit(2)
		}
		writeJSON(*exp, scale, *jsonP)
	case *seeds > 1:
		runSeeds(*exp, scale, *seeds)
	case *all:
		for _, e := range rog.Experiments() {
			runOne(e.ID, scale)
		}
	case *exp != "":
		runOne(*exp, scale)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runSeeds replicates one of the end-to-end figures across seeds.
func runSeeds(exp string, scale rog.ExperimentScale, n int) {
	opts := harness.EndToEndOptions{Scale: scale}
	switch exp {
	case "fig1":
		opts.Paradigm, opts.Env = "cruda", trace.Outdoor
	case "fig6":
		opts.Paradigm, opts.Env = "cruda", trace.Indoor
	case "fig7":
		opts.Paradigm, opts.Env = "crimp", trace.Outdoor
	default:
		fmt.Fprintf(os.Stderr, "rogbench: -seeds works with fig1, fig6 or fig7 (got %q)\n", exp)
		os.Exit(2)
	}
	seedList := make([]uint64, n)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	start := time.Now()
	sums, err := harness.RunEndToEndSeeds(opts, seedList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("== %s across %d seeds (scale=%s) ==\n\n", exp, n, scale.Name)
	fmt.Println(harness.SeedSummaryTable(sums))
	fmt.Printf("[completed in %.1fs wall clock]\n", time.Since(start).Seconds())
}

// runDrift reruns the experiment a BENCH_*.json snapshot recorded, at the
// snapshot's own scale, and prints what moved. Drift is a report, not a
// gate: the command exits 0 even when numbers changed, and exits non-zero
// only when the snapshot cannot be read or the experiment cannot run.
func runDrift(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogbench: %v\n", err)
		os.Exit(1)
	}
	base, err := harness.ReadJSONReport(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogbench: %v\n", err)
		os.Exit(1)
	}
	scale := rog.QuickScale
	if base.Scale == rog.FullScale.Name {
		scale = rog.FullScale
	}
	start := time.Now()
	cur, err := harness.RunJSONReport(base.Experiment, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(harness.DriftTable(base, cur))
	fmt.Printf("[drift vs %s computed in %.1fs wall clock]\n", path, time.Since(start).Seconds())
}

// writeJSON runs one experiment and writes its machine-readable report.
func writeJSON(id string, scale rog.ExperimentScale, path string) {
	start := time.Now()
	rep, err := harness.RunJSONReport(id, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogbench: %v\n", err)
		os.Exit(2)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogbench: %v\n", err)
		os.Exit(1)
	}
	if err := rep.WriteJSON(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s report written to %s (%d systems, scale=%s, %.1fs wall clock)\n",
		id, path, len(rep.Systems), scale.Name, time.Since(start).Seconds())
}

func runOne(id string, scale rog.ExperimentScale) {
	start := time.Now()
	out, err := rog.RunExperiment(id, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(out)
	fmt.Printf("[%s completed in %.1fs wall clock, scale=%s]\n\n", id, time.Since(start).Seconds(), scale.Name)
}
