// Command bandtrace generates and inspects synthetic robotic-IoT bandwidth
// traces (the Fig. 3 substrate), and can export them as CSV for replay —
// the same role as the paper's recorded `tc` traces.
//
// Usage:
//
//	bandtrace -env outdoor -duration 300            # print statistics
//	bandtrace -env indoor -csv trace.csv            # export samples
//	bandtrace -env outdoor -loss ge:0.05 -csv t.csv # with a loss-rate column
//	bandtrace -stats trace.csv                      # analyze a recorded CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"rog"
	"rog/internal/trace"
)

func main() {
	var (
		env      = flag.String("env", "outdoor", "environment profile: indoor or outdoor")
		duration = flag.Float64("duration", 300, "trace duration in seconds")
		seed     = flag.Uint64("seed", 42, "generator seed")
		csvPath  = flag.String("csv", "", "write the trace to this CSV file")
		statsCSV = flag.String("stats", "", "analyze a recorded trace CSV instead of generating")
		lossSpec = flag.String("loss", "", `attach a synthetic loss-rate column: "ge:0.05[/burst]" or "iid:0.02"`)
	)
	flag.Parse()

	var tr *rog.BandwidthTrace
	if *statsCSV != "" {
		if *lossSpec != "" {
			fatal(fmt.Errorf("-loss synthesizes a column for generated traces; -stats analyzes a recorded one"))
		}
		f, err := os.Open(*statsCSV)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err = trace.ReadCSV(f)
		if err != nil {
			fatal(err)
		}
	} else {
		e := rog.Outdoor
		if *env == "indoor" {
			e = rog.Indoor
		}
		tr = rog.GenerateTrace(e, *duration, *seed)
		if *lossSpec != "" {
			sp, err := rog.ParseLossSpec(*lossSpec)
			if err != nil {
				fatal(err)
			}
			if !sp.Enabled() || sp.Kind == "trace" {
				fatal(fmt.Errorf("-loss wants a generative model (iid:RATE or ge:RATE[/BURST]), got %q", *lossSpec))
			}
			// The Gilbert–Elliott chain advances once per trace sample, so
			// loss bursts land alongside the bandwidth fades they model.
			tr.Loss = sp.RateSeries(len(tr.Samples), *seed+1)
		}
	}

	fmt.Printf("samples:                 %d (dt=%.2fs, %.0fs total)\n", len(tr.Samples), tr.Dt, tr.Duration())
	fmt.Printf("mean bandwidth:          %.1f Mbps\n", tr.Mean())
	fmt.Printf("min bandwidth:           %.2f Mbps\n", tr.Min())
	fmt.Printf("s per >=20%% fluctuation: %.2f  (paper: ~0.4s)\n", tr.MeanFluctuationInterval(0.2))
	fmt.Printf("s per >=40%% fluctuation: %.2f  (paper: ~1.2s)\n", tr.MeanFluctuationInterval(0.4))
	fmt.Printf("time below 5 Mbps:       %.1f%%\n", 100*tr.FractionBelow(5))
	if len(tr.Loss) > 0 {
		fmt.Printf("mean packet loss:        %.2f%%\n", 100*tr.MeanLoss())
	}
	fmt.Printf("profile:                 %s\n", tr.Sparkline(72))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bandtrace: %v\n", err)
	os.Exit(1)
}
