// Command rogtrain trains one workload with a chosen synchronization
// strategy over the simulated robot team and prints live progress — the
// single-run counterpart of rogbench's comparisons.
//
// Usage:
//
//	rogtrain -strategy rog -threshold 4 -env outdoor -minutes 10
//	rogtrain -paradigm crimp -strategy ssp -threshold 20
//	rogtrain -strategy rog -faults "crash:1@120+60,blackout:0@300+30"
//	rogtrain -strategy rog -loss 0.05 -loss-model ge/16 -reliability selective
//	rogtrain -strategy rog -checkpoint-dir ckpt -checkpoint-every 60
//	rogtrain -strategy rog -checkpoint-dir ckpt -resume
//	rogtrain -strategy rog -workers 64 -shards 8 -aggregators 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rog"
	"rog/internal/harness"
)

func main() {
	var (
		paradigm  = flag.String("paradigm", "cruda", "workload: cruda or crimp")
		strategy  = flag.String("strategy", "rog", "bsp, ssp, dssp, flown or rog")
		threshold = flag.Int("threshold", 4, "staleness threshold")
		env       = flag.String("env", "outdoor", "indoor or outdoor")
		workers   = flag.Int("workers", 4, "number of robots")
		minutes   = flag.Float64("minutes", 10, "virtual training minutes")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		csvPath   = flag.String("csv", "", "write the checkpoint series to this CSV file")
		faultSpec = flag.String("faults", "", `fault script, e.g. "crash:1@120+60,blackout:0@300+30,flap:2@60+90/5"`)
		tracePath = flag.String("trace", "", "write a structured event trace to this file (see rogtrace)")
		traceFmt  = flag.String("trace-format", "jsonl", "trace format: jsonl or chrome (chrome://tracing / Perfetto)")
		lossRate  = flag.Float64("loss", 0, "mean packet-loss rate on every link (0 disables the loss channel)")
		lossModel = flag.String("loss-model", "ge", `loss model: "ge" (bursty, optionally "ge/16" for a 16-packet mean burst) or "iid"`)
		relMode   = flag.String("reliability", "selective", "lost-row recovery: selective (only the Must prefix retransmits) or all")
		ckptDir   = flag.String("checkpoint-dir", "", "durable checkpoint store directory (created if missing)")
		ckptEvery = flag.Float64("checkpoint-every", 60, "snapshot interval in virtual seconds")
		resume    = flag.Bool("resume", false, "resume the run recorded in -checkpoint-dir instead of starting fresh")
		shards    = flag.Int("shards", 0, "split the server state into this many unit-range shards (0 = 1, the single-lock server)")
		aggs      = flag.Int("aggregators", 0, "route pushes through this many edge aggregators (0 = direct to the root server)")
	)
	flag.StringVar(faultSpec, "fault", "", "alias for -faults")
	flag.Parse()

	// A stray positional argument usually means a mistyped flag (e.g.
	// "threshold 4" without the dash); training with silently ignored
	// arguments — or with zero values — is the failure mode, so refuse.
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rogtrain: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *paradigm != "cruda" && *paradigm != "crimp" {
		fmt.Fprintf(os.Stderr, "rogtrain: unknown paradigm %q (want cruda or crimp)\n", *paradigm)
		os.Exit(2)
	}
	if *env != "indoor" && *env != "outdoor" {
		fmt.Fprintf(os.Stderr, "rogtrain: unknown env %q (want indoor or outdoor)\n", *env)
		os.Exit(2)
	}
	if *workers < 2 {
		fmt.Fprintf(os.Stderr, "rogtrain: need at least 2 workers, got %d\n", *workers)
		os.Exit(2)
	}
	if *threshold < 1 {
		fmt.Fprintf(os.Stderr, "rogtrain: threshold must be >= 1, got %d\n", *threshold)
		os.Exit(2)
	}
	if *minutes <= 0 {
		fmt.Fprintf(os.Stderr, "rogtrain: minutes must be > 0, got %g\n", *minutes)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "rogtrain: shards must be >= 0, got %d\n", *shards)
		os.Exit(2)
	}
	if *aggs < 0 {
		fmt.Fprintf(os.Stderr, "rogtrain: aggregators must be >= 0, got %d\n", *aggs)
		os.Exit(2)
	}

	faults, err := rog.ParseFaultSchedule(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogtrain: %v\n", err)
		os.Exit(2)
	}
	if *ckptDir == "" {
		// An explicit -checkpoint-every or -resume without a store directory
		// would silently checkpoint nothing; refuse rather than ignore.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "checkpoint-every" || f.Name == "resume" {
				fmt.Fprintf(os.Stderr, "rogtrain: -%s needs -checkpoint-dir\n", f.Name)
				os.Exit(2)
			}
		})
		for _, ev := range faults {
			if ev.Kind == rog.FaultServerCrash {
				fmt.Fprintln(os.Stderr, "rogtrain: servercrash faults need -checkpoint-dir to recover from")
				os.Exit(2)
			}
		}
	} else if *ckptEvery <= 0 {
		fmt.Fprintf(os.Stderr, "rogtrain: checkpoint-every must be > 0, got %g\n", *ckptEvery)
		os.Exit(2)
	}
	reliability, err := rog.ParseLossReliability(*relMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogtrain: %v\n", err)
		os.Exit(2)
	}
	var loss rog.LossSpec
	if *lossRate > 0 {
		kind, burst, _ := strings.Cut(*lossModel, "/")
		spec := fmt.Sprintf("%s:%g", kind, *lossRate)
		if burst != "" {
			spec += "/" + burst
		}
		if loss, err = rog.ParseLossSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "rogtrain: %v\n", err)
			os.Exit(2)
		}
		if loss.Kind == "trace" {
			// The simnet generates its bandwidth traces internally, so there
			// is no recorded loss column to replay here.
			fmt.Fprintln(os.Stderr, "rogtrain: -loss-model trace needs recorded traces; use ge or iid")
			os.Exit(2)
		}
	} else {
		// An explicit -loss-model or -reliability without -loss would
		// silently train losslessly; refuse rather than ignore.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "loss-model" || f.Name == "reliability" {
				fmt.Fprintf(os.Stderr, "rogtrain: -%s needs -loss\n", f.Name)
				os.Exit(2)
			}
		})
	}
	if *traceFmt != "jsonl" && *traceFmt != "chrome" {
		fmt.Fprintf(os.Stderr, "rogtrain: unknown trace format %q (want jsonl or chrome)\n", *traceFmt)
		os.Exit(2)
	}
	if *tracePath == "" {
		// An explicit -trace-format without -trace would silently trace
		// nothing; refuse rather than ignore.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "trace-format" {
				fmt.Fprintln(os.Stderr, "rogtrain: -trace-format needs -trace")
				os.Exit(2)
			}
		})
	}
	var tracer interface {
		rog.Tracer
		Close() error
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rogtrain: %v\n", err)
			os.Exit(1)
		}
		if *traceFmt == "chrome" {
			tracer = rog.NewChromeTracer(f)
		} else {
			tracer = rog.NewJSONLTracer(f)
		}
	}

	var strat rog.Strategy
	switch strings.ToLower(*strategy) {
	case "bsp":
		strat = rog.BSP
	case "ssp":
		strat = rog.SSP
	case "flown":
		strat = rog.FLOWN
	case "rog":
		strat = rog.ROG
	case "dssp":
		strat = rog.DSSP
	default:
		fmt.Fprintf(os.Stderr, "rogtrain: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	e := rog.Outdoor
	if *env == "indoor" {
		e = rog.Indoor
	}

	var wl rog.Workload
	computeSec, modelBytes := 2.64, 2.1e6
	metric := "accuracy"
	if *paradigm == "crimp" {
		opts := rog.DefaultCRIMPOptions()
		opts.Workers = *workers
		opts.Seed = *seed
		wl = rog.NewCRIMPWorkload(opts)
		computeSec, modelBytes = 1.4, 0.76e6
		metric = "trajectory error"
	} else {
		opts := rog.DefaultCRUDAOptions()
		opts.Workers = *workers
		opts.Seed = *seed
		fmt.Println("pretraining shared model on the clean domain...")
		c := rog.NewCRUDAWorkload(opts)
		fmt.Printf("pretrained: clean acc %.3f, after domain shift %.3f\n",
			c.PretrainCleanAcc, c.PretrainNoisyAcc)
		wl = c
	}

	cfg := rog.Config{
		Strategy:          strat,
		Workers:           *workers,
		Threshold:         *threshold,
		Env:               e,
		Seed:              *seed,
		ComputeSeconds:    computeSec,
		PaperModelBytes:   modelBytes,
		LR:                0.025,
		Momentum:          0.9,
		LRDecayIters:      600,
		MaxVirtualSeconds: *minutes * 60,
		CheckpointEvery:   10,
		Faults:            faults,
		Loss:              loss,
		Reliability:       reliability,
		Shards:            *shards,
		Aggregators:       *aggs,
	}
	if *ckptDir != "" {
		st, err := rog.OpenCheckpoints(*ckptDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rogtrain: %v\n", err)
			os.Exit(1)
		}
		cfg.Durable = st
		cfg.SnapshotEverySeconds = *ckptEvery
		cfg.Resume = *resume
	}
	if tracer != nil {
		cfg.Trace = tracer
	}
	res, err := rog.Run(cfg, wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogtrain: %v\n", err)
		os.Exit(1)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rogtrain: closing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%s)\n", *tracePath, *traceFmt)
	}

	fmt.Printf("\n%s on %s (%s, %d workers, %.0f virtual minutes)\n",
		res.Label(), *paradigm, e, *workers, *minutes)
	for _, p := range res.Series.Points {
		fmt.Printf("  t=%7.1fs  iter=%5d  energy=%9.0fJ  %s=%.4f\n",
			p.Time, p.Iter, p.Energy, metric, p.Value)
	}
	c := res.Composition
	fmt.Printf("\navg iteration: compute %.2fs, comm %.2fs, stall %.2fs (stall share %.1f%%)\n",
		c.Compute, c.Comm, c.Stall, 100*res.StallFrac)
	fmt.Printf("completed %d iterations, %.0fJ total\n", res.Iterations, res.TotalJoules)
	if len(faults) > 0 {
		fmt.Printf("churn: %s\n", res.Churn.String())
	}
	if res.Recovery.Enabled() {
		fmt.Printf("recovery: %s\n", res.Recovery.String())
	}
	if loss.Enabled() {
		fmt.Printf("loss channel %s, %s reliability: %s\n", loss, reliability, res.Loss.String())
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rogtrain: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := harness.WriteSeriesCSV(f, []*rog.Result{res}); err != nil {
			fmt.Fprintf(os.Stderr, "rogtrain: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}
}
