// Command roglint runs the repo's invariant analyzer suite (see
// internal/analysis) over the module and prints findings as
// file:line:col: [pass] message. It exits 1 when any finding survives the
// //roglint:ignore suppressions, 2 on usage or load errors — so the
// verify gate can fail a PR before a single test runs.
//
// Usage:
//
//	roglint ./...                 # whole module (the default)
//	roglint ./internal/livenet    # one package
//	roglint -passes lockguard,errdrop ./...
//	roglint -list                 # show the passes
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rog/internal/analysis"
)

func main() {
	var (
		passNames = flag.String("passes", "", "comma-separated pass names to run (default: all)")
		list      = flag.Bool("list", false, "list the available passes and exit")
	)
	flag.Parse()

	all := analysis.DefaultPasses()
	if *list {
		for _, p := range all {
			fmt.Printf("%-10s %s\n", p.Name(), p.Doc())
		}
		return
	}

	passes := all
	if *passNames != "" {
		byName := map[string]analysis.Pass{}
		for _, p := range all {
			byName[p.Name()] = p
		}
		passes = nil
		for _, name := range strings.Split(*passNames, ",") {
			p, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "roglint: unknown pass %q (try -list)\n", name)
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "roglint: %v\n", err)
		os.Exit(2)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roglint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(root, modPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roglint: %v\n", err)
		os.Exit(2)
	}

	if filtered, err := filterPackages(pkgs, root, modPath, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "roglint: %v\n", err)
		os.Exit(2)
	} else {
		pkgs = filtered
	}

	diags := analysis.Analyze(pkgs, passes)
	for _, d := range diags {
		rel := d
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "roglint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// filterPackages narrows the loaded packages to the argument patterns:
// "./..." (everything), "./dir/..." (subtree), or "./dir" (exactly one).
// No arguments means everything.
func filterPackages(pkgs []*analysis.Package, root, modPath string, args []string) ([]*analysis.Package, error) {
	if len(args) == 0 {
		return pkgs, nil
	}
	var out []*analysis.Package
	seen := map[string]bool{}
	for _, arg := range args {
		pattern := strings.TrimSuffix(strings.TrimPrefix(arg, "./"), "/")
		subtree := false
		if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
			subtree = true
			pattern = rest
		} else if pattern == "..." {
			subtree = true
			pattern = ""
		}
		want := modPath
		if pattern != "" && pattern != "." {
			want = modPath + "/" + filepath.ToSlash(pattern)
		}
		matched := false
		for _, p := range pkgs {
			if p.Path == want || (subtree && (pattern == "" || pattern == "." || strings.HasPrefix(p.Path, want+"/"))) {
				matched = true
				if !seen[p.Path] {
					seen[p.Path] = true
					out = append(out, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", arg)
		}
	}
	return out, nil
}
