// Command roglint runs the repo's invariant analyzer suite (see
// internal/analysis) over the module and prints findings as
// file:line:col: [pass] message. It exits 1 when any finding survives the
// //roglint:ignore suppressions, 2 on usage or load errors — so the
// verify gate can fail a PR before a single test runs and can tell "the
// tree is dirty" apart from "the analyzer could not even load it".
//
// Usage:
//
//	roglint ./...                 # whole module (the default)
//	roglint ./internal/livenet    # one package
//	roglint -passes lockguard,errdrop ./...
//	roglint -json ./...           # findings as a JSON array on stdout
//	roglint -timing ./...         # per-pass wall time on stderr
//	roglint -list                 # show the passes
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rog/internal/analysis"
)

func main() {
	var (
		passNames = flag.String("passes", "", "comma-separated pass names to run (default: all)")
		list      = flag.Bool("list", false, "list the available passes and exit")
		asJSON    = flag.Bool("json", false, "emit findings as JSON ({pass, file, line, col, msg}) on stdout")
		timing    = flag.Bool("timing", false, "report per-pass wall time on stderr")
	)
	flag.Parse()

	if *list {
		for _, p := range analysis.DefaultPasses() {
			fmt.Printf("%-10s %s\n", p.Name(), p.Doc())
		}
		return
	}

	passes, err := analysis.SelectPasses(*passNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roglint: %v\n", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "roglint: %v\n", err)
		os.Exit(2)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roglint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(root, modPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roglint: load error: %v\n", err)
		os.Exit(2)
	}

	if filtered, err := filterPackages(pkgs, root, modPath, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "roglint: %v\n", err)
		os.Exit(2)
	} else {
		pkgs = filtered
	}

	diags, timings := analysis.AnalyzeTimed(pkgs, passes)
	for i := range diags {
		if r, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = r
		}
	}

	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "roglint: pass %-10s %8.3fs\n", tm.Pass, tm.Seconds)
		}
	}

	if *asJSON {
		raw, err := analysis.EncodeJSON(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roglint: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(raw))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "roglint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// filterPackages narrows the loaded packages to the argument patterns:
// "./..." (everything), "./dir/..." (subtree), or "./dir" (exactly one).
// No arguments means everything.
func filterPackages(pkgs []*analysis.Package, root, modPath string, args []string) ([]*analysis.Package, error) {
	if len(args) == 0 {
		return pkgs, nil
	}
	var out []*analysis.Package
	seen := map[string]bool{}
	for _, arg := range args {
		pattern := strings.TrimSuffix(strings.TrimPrefix(arg, "./"), "/")
		subtree := false
		if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
			subtree = true
			pattern = rest
		} else if pattern == "..." {
			subtree = true
			pattern = ""
		}
		want := modPath
		if pattern != "" && pattern != "." {
			want = modPath + "/" + filepath.ToSlash(pattern)
		}
		matched := false
		for _, p := range pkgs {
			if p.Path == want || (subtree && (pattern == "" || pattern == "." || strings.HasPrefix(p.Path, want+"/"))) {
				matched = true
				if !seen[p.Path] {
					seen[p.Path] = true
					out = append(out, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", arg)
		}
	}
	return out, nil
}
