// Command rogtrace aggregates a JSONL event trace written by rogtrain
// -trace (or any obs.JSONLTracer) into the run's composition, transmission
// and staleness tables — the offline counterpart of the live metrics
// registry.
//
// The critpath subcommand instead runs the causal critical-path analyzer:
// each worker's wall time decomposed into compute / comm / gate-stall /
// merge segments, the top blocking (worker, unit) pairs, and the stall
// duration quantiles. It exits non-zero when the decomposition covers less
// than 99% of any worker's wall time or the trace is structurally broken.
//
// Usage:
//
//	rogtrain -strategy rog -trace run.jsonl
//	rogtrace run.jsonl
//	rogtrace - < run.jsonl
//	rogtrace critpath run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"rog"
	"rog/internal/metrics"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rogtrace [critpath] <trace.jsonl>  (or \"-\" for stdin)")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	critpath := len(args) > 0 && args[0] == "critpath"
	if critpath {
		args = args[1:]
	}
	if len(args) != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if path := args[0]; path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rogtrace: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	if critpath {
		rep, err := rog.CritPathFromTrace(in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rogtrace: %v\n", err)
			os.Exit(1)
		}
		printCritPath(rep)
		if len(rep.Errors) > 0 || rep.MinCoverage() < 0.99 {
			os.Exit(1)
		}
		return
	}
	sum, err := rog.AggregateTrace(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rogtrace: %v\n", err)
		os.Exit(1)
	}
	printSummary(sum)
	if len(sum.PairErrors) > 0 {
		os.Exit(1)
	}
}

// printCritPath renders the critical-path decomposition: the per-worker
// segment table, the top blocking (worker, unit) pairs, and the stall
// duration quantiles.
func printCritPath(rep *rog.CritReport) {
	fmt.Println("-- critical path (per worker) --")
	rows := make([][]string, 0, len(rep.Workers))
	for _, w := range rep.Workers {
		rows = append(rows, []string{
			fmt.Sprintf("%d", w.Worker),
			fmt.Sprintf("%d", w.Iters),
			fmt.Sprintf("%.2f", w.WallSeconds),
			fmt.Sprintf("%.2f", w.ComputeSeconds),
			fmt.Sprintf("%.2f", w.CommSeconds),
			fmt.Sprintf("%.2f", w.StallSeconds),
			fmt.Sprintf("%.2f", w.MergeSeconds),
			fmt.Sprintf("%.1f%%", 100*w.Coverage),
		})
	}
	fmt.Println(metrics.FormatTable(
		[]string{"worker", "iters", "wall s", "compute s", "comm s", "stall s", "merge s", "coverage"}, rows))

	compute, comm, stall, merge := rep.Totals()
	fmt.Printf("\ntotals: compute %.2fs, comm %.2fs, stall %.2fs, merge %.2fs (min coverage %.1f%%)\n",
		compute, comm, stall, merge, 100*rep.MinCoverage())

	if len(rep.Blockers) > 0 {
		fmt.Println("\n-- top blockers (who held the RSP gate) --")
		rows = rows[:0]
		for i, b := range rep.Blockers {
			if i == 10 {
				break
			}
			who, unit := fmt.Sprintf("%d", b.Worker), fmt.Sprintf("%d", b.Unit)
			if b.Worker < 0 {
				who = "unknown"
			}
			if b.Unit < 0 {
				unit = "detach"
			}
			rows = append(rows, []string{
				who, unit,
				fmt.Sprintf("%.2f", b.StallSeconds),
				fmt.Sprintf("%d", b.Stalls),
			})
		}
		fmt.Println(metrics.FormatTable([]string{"worker", "unit", "stall s", "stalls"}, rows))
	}

	if rep.StallHist.Count > 0 {
		fmt.Printf("\nstall durations: %d stalls, p50 %.3fs, p95 %.3fs, p99 %.3fs\n",
			rep.StallHist.Count, rep.StallHist.P50, rep.StallHist.P95, rep.StallHist.P99)
	}
	if rep.InfraCommSeconds > 0 {
		fmt.Printf("infrastructure (aggregator uplink) airtime: %.2fs\n", rep.InfraCommSeconds)
	}
	if rep.OpenStalls > 0 {
		fmt.Printf("%d stall interval(s) left open (run ended or membership ended them)\n", rep.OpenStalls)
	}
	if rep.Unattributed > 0 {
		fmt.Printf("%d stall(s) without a concrete blocker\n", rep.Unattributed)
	}
	if len(rep.Errors) > 0 {
		fmt.Println("\n-- structural violations --")
		for _, e := range rep.Errors {
			fmt.Printf("  %s\n", e)
		}
	}
}

func printSummary(s *rog.TraceSummary) {
	fmt.Println("-- event counts --")
	kinds := make([]string, 0, len(s.Events))
	for k := range s.Events {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	rows := make([][]string, 0, len(kinds))
	for _, k := range kinds {
		rows = append(rows, []string{k, fmt.Sprintf("%d", s.Events[k])})
	}
	fmt.Println(metrics.FormatTable([]string{"event", "count"}, rows))

	if s.Iters > 0 {
		comp, comm, stall := s.Composition()
		fmt.Printf("\navg iteration (%d worker-iterations): compute %.2fs, comm %.2fs, stall %.2fs\n",
			s.Iters, comp, comm, stall)
		fmt.Println("\n-- per-iteration composition --")
		rows = rows[:0]
		// Sample long runs down to ~40 rows so the table stays readable.
		step := (len(s.ByIter) + 39) / 40
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(s.ByIter); i += step {
			r := s.ByIter[i]
			rows = append(rows, []string{
				fmt.Sprintf("%d", r.Iter),
				fmt.Sprintf("%d", r.Count),
				fmt.Sprintf("%.2f", r.Compute),
				fmt.Sprintf("%.2f", r.Comm),
				fmt.Sprintf("%.2f", r.Stall),
			})
		}
		fmt.Println(metrics.FormatTable(
			[]string{"iter", "workers", "compute s", "comm s", "stall s"}, rows))
	}

	if s.RowsPlanned > 0 || s.RowsSent > 0 {
		fmt.Println("\n-- transmission --")
		fmt.Println(metrics.FormatTable(
			[]string{"direction", "rows", "bytes"},
			[][]string{
				{"push", fmt.Sprintf("%d", s.RowsSent), fmt.Sprintf("%.0f", s.BytesPushed)},
				{"pull", fmt.Sprintf("%d", s.RowsPulled), fmt.Sprintf("%.0f", s.BytesPulled)},
			}))
		fmt.Printf("planned %d rows, deferred %d\n", s.RowsPlanned, s.RowsDeferred)
	}

	if s.Merges > 0 {
		fmt.Println("\n-- staleness at merge (lag = iteration ahead of the row minimum) --")
		lags := make([]int64, 0, len(s.LagHist))
		for l := range s.LagHist {
			lags = append(lags, l)
		}
		sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
		rows = rows[:0]
		for _, l := range lags {
			rows = append(rows, []string{fmt.Sprintf("%d", l), fmt.Sprintf("%d", s.LagHist[l])})
		}
		fmt.Println(metrics.FormatTable([]string{"lag", "merges"}, rows))

		fmt.Println("\n-- per-unit staleness --")
		rows = rows[:0]
		step := (len(s.Units) + 39) / 40
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(s.Units); i += step {
			u := s.Units[i]
			rows = append(rows, []string{
				fmt.Sprintf("%d", u.Unit),
				fmt.Sprintf("%d", u.Merges),
				fmt.Sprintf("%.2f", u.MeanLag),
				fmt.Sprintf("%d", u.MaxLag),
			})
		}
		fmt.Println(metrics.FormatTable([]string{"unit", "merges", "mean lag", "max lag"}, rows))
	}

	if len(s.StallByCause) > 0 {
		fmt.Println("\n-- stall seconds by cause --")
		causes := make([]string, 0, len(s.StallByCause))
		for c := range s.StallByCause {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		rows = rows[:0]
		for _, c := range causes {
			rows = append(rows, []string{c, fmt.Sprintf("%.2f", s.StallByCause[c])})
		}
		fmt.Println(metrics.FormatTable([]string{"cause", "seconds"}, rows))
	}

	if s.RowsLostFolded > 0 || s.RowsRetransmitted > 0 || s.RetransmitBytes > 0 {
		fmt.Println("\n-- loss & retransmission --")
		fmt.Println(metrics.FormatTable(
			[]string{"outcome", "rows", "bytes"},
			[][]string{
				{"folded back (best-effort)", fmt.Sprintf("%d", s.RowsLostFolded), "-"},
				{"retransmitted (reliable)", fmt.Sprintf("%d", s.RowsRetransmitted), fmt.Sprintf("%.0f", s.RetransmitBytes)},
			}))
		if s.RetransmitSeconds > 0 {
			fmt.Printf("retransmission airtime: %.2fs\n", s.RetransmitSeconds)
		}
	}

	if s.RequestsServed > 0 || s.SnapshotPublishes > 0 {
		fmt.Println("\n-- serving tier --")
		avg := 0.0
		if s.RequestsServed > 0 {
			avg = s.ServeSeconds / float64(s.RequestsServed)
		}
		fmt.Println(metrics.FormatTable(
			[]string{"metric", "value"},
			[][]string{
				{"snapshots published", fmt.Sprintf("%d", s.SnapshotPublishes)},
				{"requests enqueued", fmt.Sprintf("%d", s.RequestsEnqueued)},
				{"requests served", fmt.Sprintf("%d", s.RequestsServed)},
				{"latency avg / max", fmt.Sprintf("%.1fms / %.1fms", 1000*avg, 1000*s.MaxServeSeconds)},
				{"read stalls", fmt.Sprintf("%d (%.2fs parked)", s.ReadStalls, s.ReadStallSeconds)},
				{"max read lag", fmt.Sprintf("%d", s.MaxReadLag)},
			}))
		if s.OpenReadStalls > 0 {
			fmt.Printf("%d read stall(s) left open (requests still parked at trace end)\n", s.OpenReadStalls)
		}
	}

	if s.Detaches > 0 || s.Reconnects > 0 {
		fmt.Printf("\nchurn: %d detaches, %d reconnects, %d resyncs (%d rows, %.0f bytes)\n",
			s.Detaches, s.Reconnects, s.Resyncs, s.ResyncRows, s.ResyncBytes)
	}
	if s.OpenStalls > 0 {
		fmt.Printf("\n%d stall interval(s) left open (run ended or membership ended them)\n", s.OpenStalls)
	}
	if len(s.PairErrors) > 0 {
		fmt.Println("\n-- pairing violations --")
		for _, e := range s.PairErrors {
			fmt.Printf("  %s\n", e)
		}
	}
}
