// Command rogserve runs the inference tier: it serves bounded-staleness
// predictions from versioned snapshots of a training run.
//
// Three modes:
//
//	rogserve -demo              # simnet load sweep (the harness "serve" experiment)
//	rogserve -listen 127.0.0.1:7070    # train in-process, serve snapshots over TCP
//	rogserve -connect 127.0.0.1:7070 -n 10 -min-version 3
//
// The listen mode trains the same synthetic workload the harness sweep
// uses (a 6-input, 4-class MLP under the ROG policy) on the wall clock and
// answers serve-protocol requests while training runs; the connect mode is
// a load client, optionally over a lossy channel (-loss) with per-attempt
// timeouts and retries, the serve-tier analogue of training's
// loss-tolerant push path.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"rog"
	"rog/internal/atp"
	"rog/internal/engine"
	"rog/internal/lossnet"
	"rog/internal/nn"
	"rog/internal/rowsync"
	"rog/internal/serve"
	"rog/internal/tensor"
)

// inDim/classes mirror the harness serve experiment's model so the demo
// sweep and the socket mode serve the same architecture.
const (
	inDim   = 6
	classes = 4
)

func main() {
	var (
		demo    = flag.Bool("demo", false, "run the simnet load sweep (the harness serve experiment) and exit")
		full    = flag.Bool("full", false, "with -demo: paper scale instead of quick")
		listen  = flag.String("listen", "", "train in-process and serve snapshots on this TCP address")
		connect = flag.String("connect", "", "send inference requests to a rogserve -listen instance")

		workers   = flag.Int("workers", 4, "listen: simulated training robots")
		threshold = flag.Int("threshold", 8, "listen: ROG staleness threshold")
		shards    = flag.Int("shards", 2, "listen: unit-range shards in the training state")
		lr        = flag.Float64("lr", 0.05, "listen: SGD step applied to each absorbed row")
		period    = flag.Float64("period", 0.5, "listen: seconds between training rounds")
		rounds    = flag.Int("rounds", 0, "listen: stop training after this many rounds (0 = until killed)")
		window    = flag.Float64("window", 0.02, "listen: batching window in seconds")
		maxBatch  = flag.Int("max-batch", 16, "listen: flush a batch early at this depth")

		n        = flag.Int("n", 10, "connect: number of requests")
		minV     = flag.Int64("min-version", 0, "connect: demand a snapshot at least this fresh (read gate)")
		inputCSV = flag.String("input", "", "connect: comma-separated feature vector (default: seeded random)")
		loss     = flag.Float64("loss", 0, "connect: drop this fraction of request frames (lossy channel demo)")
		timeout  = flag.Float64("timeout", 2, "connect: per-attempt reply timeout in seconds")
		retries  = flag.Int("retries", 5, "connect: attempts per request before giving up")

		seed = flag.Uint64("seed", 1, "seed for the model, gradients and client inputs")
	)
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rogserve: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*demo, *listen != "", *connect != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "rogserve: pick exactly one of -demo, -listen or -connect")
		flag.Usage()
		os.Exit(2)
	}

	switch {
	case *demo:
		scale := rog.QuickScale
		if *full {
			scale = rog.FullScale
		}
		start := time.Now()
		out, err := rog.RunExperiment("serve", scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rogserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[serve sweep completed in %.1fs wall clock, scale=%s]\n", time.Since(start).Seconds(), scale.Name)
	case *listen != "":
		if *workers < 2 || *threshold < 2 || *period <= 0 {
			fmt.Fprintln(os.Stderr, "rogserve: -listen needs workers >= 2, threshold >= 2 and period > 0")
			os.Exit(2)
		}
		if err := runServer(*listen, *workers, *threshold, *shards, *lr, *period, *window, *maxBatch, *rounds, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "rogserve: %v\n", err)
			os.Exit(1)
		}
	default:
		if err := runClient(*connect, *n, *minV, *inputCSV, *loss, *timeout, *retries, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "rogserve: %v\n", err)
			os.Exit(1)
		}
	}
}

// wallClock adapts the monotonic wall clock to the serve tier's injected
// Clock, anchored at construction so timestamps stay small.
type wallClock struct{ start time.Time }

func (c wallClock) Now() float64 { return time.Since(c.start).Seconds() }

func (c wallClock) After(d float64, fn func()) {
	time.AfterFunc(time.Duration(d*float64(time.Second)), fn)
}

// runServer trains the synthetic workload in-process and serves snapshots
// of it over TCP until killed.
func runServer(addr string, workers, threshold, shards int, lr, period, window float64, maxBatch, rounds int, seed uint64) error {
	proto := nn.NewClassifierMLP(inDim, []int{8}, classes, tensor.NewRNG(seed))
	part := rowsync.NewPartition(proto.Params(), rowsync.Rows)
	pol, err := engine.New("rog", engine.Params{
		Workers:   workers,
		Threshold: threshold,
		NumUnits:  part.NumUnits(),
		Coeff:     atp.DefaultCoefficients(),
	})
	if err != nil {
		return err
	}
	st := engine.NewStateSharded(pol, part, workers, 1.0, shards)
	pub := serve.NewPublisher(st, part, proto.Params(), lr)
	scratch := nn.NewClassifierMLP(inDim, []int{8}, classes, tensor.NewRNG(1))
	scratch.CopyParamsFrom(proto)
	srv := serve.NewServer(pub, scratch, inDim, serve.Config{
		WindowSeconds: window,
		MaxBatch:      maxBatch,
		Clock:         wallClock{start: time.Now()},
	})

	units := make([]int, part.NumUnits())
	for u := range units {
		units[u] = u
	}
	for w := 0; w < workers; w++ {
		go func(w int) {
			r := tensor.NewRNG(seed*100003 + uint64(w)*31 + 7)
			// Stagger the workers a little so merges interleave like a
			// real team instead of arriving in lockstep.
			time.Sleep(time.Duration(float64(w) * 0.05 * period * float64(time.Second)))
			for iter := int64(1); rounds == 0 || iter <= int64(rounds); iter++ {
				time.Sleep(time.Duration(period * float64(time.Second)))
				vals := make([][]float32, len(units))
				for u := range units {
					row := make([]float32, part.Unit(u).Len)
					for i := range row {
						row[i] = float32(r.Norm() * 0.01)
					}
					vals[u] = row
				}
				st.MergeBatch(w, units, vals, iter)
			}
		}(w)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d-unit model on %s (%d workers, threshold %d, round every %.2gs)\n",
		part.NumUnits(), ln.Addr(), workers, threshold, period)
	go func() {
		for range time.Tick(2 * time.Second) {
			s := srv.Stats()
			fmt.Printf("  version %-4d snapshots %-4d served %-6d batches %-5d parked %d\n",
				pub.Version(), s.Publishes, s.Served, s.Batches, pub.Parked())
		}
	}()
	return srv.Serve(ln)
}

// runClient sends n requests and prints each reply. With -loss it wraps
// the connection in a frame-dropping channel and retries each request on a
// read-deadline, exactly like a robot polling the tier over a radio link.
func runClient(addr string, n int, minV int64, inputCSV string, loss, timeout float64, retries int, seed uint64) error {
	input, err := parseInput(inputCSV, seed)
	if err != nil {
		return err
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	conn := raw
	var lossy *lossnet.Conn
	if loss > 0 {
		lossy = lossnet.WrapConn(raw, lossnet.NewBernoulli(loss, seed), nil)
		conn = lossy
	}
	client := serve.NewClient(conn)
	defer client.Close()

	deadline := time.Duration(timeout * float64(time.Second))
	for i := 0; i < n; i++ {
		var rep serve.Reply
		start := time.Now()
		attempts := 0
		for ; attempts < retries; attempts++ {
			if loss > 0 {
				_ = conn.SetReadDeadline(time.Now().Add(deadline))
			}
			if rep, err = client.Do(input, minV); err == nil {
				break
			}
		}
		if err != nil {
			return fmt.Errorf("request %d never survived the channel after %d attempts: %w", i, attempts, err)
		}
		best, bestV := 0, rep.Output[0]
		for c, v := range rep.Output {
			if v > bestV {
				best, bestV = c, v
			}
		}
		fmt.Printf("reply %2d: version %-4d seq %-4d class %d  (%.1fms, %d attempt(s))\n",
			i, rep.Version, rep.Seq, best, float64(time.Since(start).Microseconds())/1000, attempts+1)
	}
	if lossy != nil {
		drops, bytes := lossy.Dropped()
		fmt.Printf("lossy channel dropped %d frames (%d bytes)\n", drops, bytes)
	}
	return nil
}

// parseInput builds the request vector: the -input CSV when given, a
// seeded random vector otherwise.
func parseInput(csv string, seed uint64) ([]float32, error) {
	if csv == "" {
		r := tensor.NewRNG(seed*7919 + 13)
		v := make([]float32, inDim)
		for i := range v {
			v[i] = float32(r.Norm())
		}
		return v, nil
	}
	parts := strings.Split(csv, ",")
	v := make([]float32, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
		if err != nil {
			return nil, fmt.Errorf("bad -input element %q: %v", p, err)
		}
		v = append(v, float32(f))
	}
	return v, nil
}
